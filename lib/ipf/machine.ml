(* The EPIC machine: executes bundles from the translation cache against
   guest memory, with an in-order grouped-issue timing model.

   Semantics are executed sequentially slot by slot (so a translator bug
   that violates the no-RAW-within-group rule still behaves
   deterministically), while the *timing* model issues whole instruction
   groups: a group's issue cycle is bounded below by the ready cycles of
   every register it reads, wide groups cost extra cycles beyond the issue
   width, and an intra-group RAW dependence conservatively splits the group
   for costing purposes.

   Faults (misaligned access, page fault, NaT consumption) abort execution
   and are reported with the bundle/slot so the translator runtime can run
   its precise-exception machinery. Speculative loads (ld.s) convert faults
   into NaT bits checked by chk.s; advanced loads (ld.a) allocate ALAT
   entries invalidated by overlapping stores and checked by chk.a. *)

type fault_kind = F_misalign | F_page | F_nat

type fault = {
  kind : fault_kind;
  addr : int;
  size : int;
  store : bool;
  ip : int; (* bundle index *)
  slot : int;
}

type stop =
  | Exited of Insn.exit_reason
  | Faulted of fault
  | Fuel

exception Machine_fault of fault_kind * int * int * bool (* kind,addr,size,store *)

type stats = {
  mutable cycles : int;
  mutable groups : int;
  mutable slots_retired : int; (* non-nop slots *)
  mutable loads : int;
  mutable stores : int;
  mutable taken_branches : int;
  mutable dcache_stall : int;
  mutable spec_checks : int; (* executed Spec_fail check branches *)
}

let fresh_stats () =
  {
    cycles = 0;
    groups = 0;
    slots_retired = 0;
    loads = 0;
    stores = 0;
    taken_branches = 0;
    dcache_stall = 0;
    spec_checks = 0;
  }

type t = {
  gr : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (* 128; r0 = 0; a Bigarray so fresh values need no Int64 boxing *)
  nat : bool array;
  fr : float array; (* 128; f0 = 0.0, f1 = 1.0 *)
  fnat : bool array;
  pr : bool array; (* 64; p0 = true *)
  br : int array; (* 8 branch registers holding bundle indices *)
  mem : Ia32.Memory.t;
  tcache : Tcache.t;
  dcache : Dcache.t;
  cost : Cost.t;
  alat : (int, int * int) Hashtbl.t; (* gr -> addr,size *)
  ready : int array; (* ready cycle per GR *)
  fready : int array; (* per FR *)
  stats : stats;
  mutable ip : int;
  mutable slot : int;
  (* cycle attribution: maps a bundle index to a bucket (e.g. cold/hot code)
     so chained block-to-block execution can be accounted without leaving
     the machine. *)
  mutable bucket_fn : int -> int;
  buckets : int array;
  (* Observability probe mirroring every charge: called with the current
     bundle index and the delta. Recording only — the probe must not
     touch machine state, so cycle totals are identical with or without
     it. *)
  mutable charge_probe : (int -> int -> unit) option;
  (* bundle/slot of the most recent [Out _] exit branch, for chaining *)
  mutable last_exit : int * int;
  (* Address range whose loads/stores bypass the dcache model (empty when
     lo >= hi). The translator's profile arena goes here: instrumentation
     traffic must not perturb the modeled guest dcache, so a block's
     cycles are identical no matter which arena slots it was handed. *)
  mutable dc_skip_lo : int;
  mutable dc_skip_hi : int;
  (* IPF_WATCH debug hook, parsed once: bundle index + registers to print
     each time that bundle issues (>=200 means predicate p(n-200)) *)
  watch : (int * int list) option;
  (* hot-counter trace selection: hash-indexed saturating counters bumped
     by the Hotc/Edgec pseudo-ops. Machine-owned (not guest memory), so
     counter traffic cannot perturb the modeled dcache and both execution
     cores see the same cells. *)
  hotc : int array;
  edgec : int array;
}

(* Power-of-two counter-table geometry shared by the translator (slot
   assignment) and the profile reader. Two guest addresses may alias one
   slot; heat detection stays deterministic, merely earlier for the pair. *)
let counter_slots = 4096
let counter_slot addr = (addr lxor (addr lsr 12)) land (counter_slots - 1)

(* Edge counters saturate instead of wrapping: the hot-phase bias test only
   needs taken-vs-use ordering, not exact totals. *)
let edgec_saturate = 0xFFFF

let dcache_access m addr =
  if addr >= m.dc_skip_lo && addr < m.dc_skip_hi then 0
  else Dcache.access m.dcache addr

(* IPF_WATCH is parsed once per process, not per machine: fuzz campaigns
   create thousands of machines and the spec cannot change mid-run. *)
let watch_spec =
  lazy
    (match Sys.getenv_opt "IPF_WATCH" with
    | Some spec -> (
      match String.split_on_char ',' spec with
      | b :: regs -> (
        try Some (int_of_string b, List.map int_of_string regs)
        with Failure _ -> None)
      | [] -> None)
    | None -> None)

let create ?(cost = Cost.default) ?dcache mem tcache =
  let dcache = match dcache with Some d -> d | None -> Dcache.create () in
  let m =
    {
      gr =
        (let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 128 in
         Bigarray.Array1.fill a 0L;
         a);
      nat = Array.make 128 false;
      fr = Array.make 128 0.0;
      fnat = Array.make 128 false;
      pr = Array.make 64 false;
      br = Array.make 8 0;
      mem;
      tcache;
      dcache;
      cost;
      alat = Hashtbl.create 32;
      ready = Array.make 128 0;
      fready = Array.make 128 0;
      stats = fresh_stats ();
      ip = 0;
      slot = 0;
      bucket_fn = (fun _ -> 0);
      buckets = Array.make 8 0;
      charge_probe = None;
      last_exit = (0, 0);
      dc_skip_lo = 0;
      dc_skip_hi = 0;
      watch = Lazy.force watch_spec;
      hotc = Array.make counter_slots 0;
      edgec = Array.make counter_slots 0;
    }
  in
  m.fr.(1) <- 1.0;
  m.pr.(0) <- true;
  m

(* ---- register access -------------------------------------------------- *)

let[@inline] get m r = if r = 0 then 0L else Bigarray.Array1.unsafe_get m.gr r

let[@inline] get_nat m r = if r = 0 then false else m.nat.(r)

let[@inline] set m r v =
  if r <> 0 then begin
    Bigarray.Array1.unsafe_set m.gr r v;
    m.nat.(r) <- false
  end

let[@inline] set_nat m r =
  if r <> 0 then begin
    Bigarray.Array1.unsafe_set m.gr r 0L;
    m.nat.(r) <- true
  end

let[@inline] getf m f = if f = 0 then 0.0 else if f = 1 then 1.0 else m.fr.(f)

let[@inline] setf m f v =
  if f > 1 then begin
    m.fr.(f) <- v;
    m.fnat.(f) <- false
  end

let[@inline] getp m p = if p = 0 then true else m.pr.(p)
let[@inline] setp m p v = if p <> 0 then m.pr.(p) <- v

(* IA-32 guest addresses are 32-bit; GRs hold them zero-extended. *)
let[@inline] addr_of v = Int64.to_int (Int64.logand v 0xFFFFFFFFL)

(* Convenience for the translator runtime: 32-bit canonical view. *)
let get32 m r = Int64.to_int (Int64.logand (get m r) 0xFFFFFFFFL)
let set32 m r v = set m r (Int64.of_int (Ia32.Word.mask32 v))

(* ---- memory with fault conversion ------------------------------------- *)

(* An aligned access never straddles a page (page size is a multiple of
   every access size), so the unmapped / protection checks can ride on
   the ia32 layer's own page lookup: one fault conversion below instead
   of two extra page-table probes per access here. *)
let check_access ~addr ~size ~store =
  if addr mod size <> 0 then
    raise (Machine_fault (F_misalign, addr, size, store))

let do_load m ~addr ~size =
  check_access ~addr ~size ~store:false;
  (* unmapped / protection check via the ia32 layer *)
  match
    if size = 8 then Ia32.Memory.read64 m.mem addr
    else Int64.of_int (Ia32.Memory.read size m.mem addr)
  with
  | v -> v
  | exception Ia32.Fault.Fault _ -> raise (Machine_fault (F_page, addr, size, false))

let do_store m ~addr ~size v =
  check_access ~addr ~size ~store:true;
  (match
     if size = 8 then Ia32.Memory.write64 m.mem addr v
     else Ia32.Memory.write size m.mem addr (Int64.to_int (Int64.logand v (Int64.of_int (if size = 4 then 0xFFFFFFFF else (1 lsl (8*size)) - 1))))
   with
  | () -> ()
  | exception Ia32.Fault.Fault _ -> raise (Machine_fault (F_page, addr, size, true)));
  (* an overlapping store kills matching ALAT entries; fold out the
     victims first (removal while iterating is unspecified), which costs
     nothing on the common empty-ALAT path. After the write, so a faulting
     store leaves the ALAT untouched exactly like the pre-validated path *)
  if Hashtbl.length m.alat > 0 then begin
    let victims =
      Hashtbl.fold
        (fun r (a, s) acc ->
          if addr < a + s && a < addr + size then r :: acc else acc)
        m.alat []
    in
    List.iter (Hashtbl.remove m.alat) victims
  end

(* ---- ALU semantics ---------------------------------------------------- *)

let mask_of_len len =
  if len >= 64 then -1L else Int64.sub (Int64.shift_left 1L len) 1L

let eval_cmp rel a b =
  match rel with
  | Insn.Ceq -> Int64.equal a b
  | Insn.Cne -> not (Int64.equal a b)
  | Insn.Clt -> Int64.compare a b < 0
  | Insn.Cle -> Int64.compare a b <= 0
  | Insn.Cgt -> Int64.compare a b > 0
  | Insn.Cge -> Int64.compare a b >= 0
  | Insn.Cltu -> Int64.unsigned_compare a b < 0
  | Insn.Cleu -> Int64.unsigned_compare a b <= 0
  | Insn.Cgtu -> Int64.unsigned_compare a b > 0
  | Insn.Cgeu -> Int64.unsigned_compare a b >= 0

(* NaT propagation for computational instructions. *)
let nat_of_reads m insn =
  List.exists
    (function Insn.Rgr r -> get_nat m r | _ -> false)
    (Insn.reads insn)

type flow =
  | Fall (* continue to next slot *)
  | Jump of int (* to bundle index *)
  | Leave of Insn.exit_reason

let exec_sem m insn =
  let open Insn in
  let g = get m and gn = set m in
  let sx bytes v =
    let sh = 64 - (8 * bytes) in
    Int64.shift_right (Int64.shift_left v sh) sh
  in
  let zx bytes v = Int64.logand v (mask_of_len (8 * bytes)) in
  (* computational NaT propagation *)
  let propagate dst =
    if nat_of_reads m insn then begin
      set_nat m dst;
      true
    end
    else false
  in
  let alu dst f =
    if not (propagate dst) then gn dst (f ())
  in
  match insn.sem with
  | Add (d, a, b) -> alu d (fun () -> Int64.add (g a) (g b)); Fall
  | Sub (d, a, b) -> alu d (fun () -> Int64.sub (g a) (g b)); Fall
  | Addi (d, i, a) -> alu d (fun () -> Int64.add (Int64.of_int i) (g a)); Fall
  | Subi (d, i, a) -> alu d (fun () -> Int64.sub (Int64.of_int i) (g a)); Fall
  | And (d, a, b) -> alu d (fun () -> Int64.logand (g a) (g b)); Fall
  | Or (d, a, b) -> alu d (fun () -> Int64.logor (g a) (g b)); Fall
  | Xor (d, a, b) -> alu d (fun () -> Int64.logxor (g a) (g b)); Fall
  | Andcm (d, a, b) -> alu d (fun () -> Int64.logand (g a) (Int64.lognot (g b))); Fall
  | Andi (d, i, a) -> alu d (fun () -> Int64.logand (Int64.of_int i) (g a)); Fall
  | Ori (d, i, a) -> alu d (fun () -> Int64.logor (Int64.of_int i) (g a)); Fall
  | Xori (d, i, a) -> alu d (fun () -> Int64.logxor (Int64.of_int i) (g a)); Fall
  | Shl (d, a, b) ->
    alu d (fun () ->
        let c = Int64.to_int (Int64.logand (g b) 127L) in
        if c >= 64 then 0L else Int64.shift_left (g a) c);
    Fall
  | Shli (d, a, n) -> alu d (fun () -> if n >= 64 then 0L else Int64.shift_left (g a) n); Fall
  | Shru (d, a, b) ->
    alu d (fun () ->
        let c = Int64.to_int (Int64.logand (g b) 127L) in
        if c >= 64 then 0L else Int64.shift_right_logical (g a) c);
    Fall
  | Shrui (d, a, n) ->
    alu d (fun () -> if n >= 64 then 0L else Int64.shift_right_logical (g a) n);
    Fall
  | Shrs (d, a, b) ->
    alu d (fun () ->
        let c = min 63 (Int64.to_int (Int64.logand (g b) 127L)) in
        Int64.shift_right (g a) c);
    Fall
  | Shrsi (d, a, n) -> alu d (fun () -> Int64.shift_right (g a) (min 63 n)); Fall
  | Dep (d, s, base, pos, len) ->
    alu d (fun () ->
        let field = Int64.logand (g s) (mask_of_len len) in
        let cleared = Int64.logand (g base) (Int64.lognot (Int64.shift_left (mask_of_len len) pos)) in
        Int64.logor cleared (Int64.shift_left field pos));
    Fall
  | Depz (d, s, pos, len) ->
    alu d (fun () -> Int64.shift_left (Int64.logand (g s) (mask_of_len len)) pos);
    Fall
  | Extr (d, s, pos, len) ->
    alu d (fun () ->
        Int64.shift_right (Int64.shift_left (g s) (64 - pos - len)) (64 - len));
    Fall
  | Extru (d, s, pos, len) ->
    alu d (fun () -> Int64.logand (Int64.shift_right_logical (g s) pos) (mask_of_len len));
    Fall
  | Sxt (d, s, n) -> alu d (fun () -> sx n (g s)); Fall
  | Zxt (d, s, n) -> alu d (fun () -> zx n (g s)); Fall
  | Mov (d, s) ->
    (* moves propagate NaT as a value move (like mov through add r0) *)
    if get_nat m s then set_nat m d else gn d (g s);
    Fall
  | Movi (d, v) -> gn d v; Fall
  | Mix (d, a, b) ->
    (* mix4.l: concatenate the low 32 bits of both sources *)
    alu d (fun () ->
        Int64.logor
          (Int64.shift_left (Int64.logand (g a) 0xFFFFFFFFL) 32)
          (Int64.logand (g b) 0xFFFFFFFFL));
    Fall
  | Popcnt (d, s) ->
    alu d (fun () ->
        let rec go acc v =
          if Int64.equal v 0L then acc
          else go (acc + Int64.to_int (Int64.logand v 1L)) (Int64.shift_right_logical v 1)
        in
        Int64.of_int (go 0 (g s)));
    Fall
  | Xma (d, a, b, c) | Xmau (d, a, b, c) ->
    alu d (fun () -> Int64.add (Int64.mul (g a) (g b)) (g c));
    Fall
  | Xmah (d, a, b, c) ->
    alu d (fun () ->
        (* signed high 64 bits of the product, plus addend *)
        let hi_mul x y =
          let open Int64 in
          let xl = logand x 0xFFFFFFFFL and xh = shift_right x 32 in
          let yl = logand y 0xFFFFFFFFL and yh = shift_right y 32 in
          let ll = mul xl yl in
          let lh = mul xl yh and hl = mul xh yl in
          let hh = mul xh yh in
          let mid = add (add lh hl) (shift_right_logical ll 32) in
          add hh (shift_right mid 32)
        in
        Int64.add (hi_mul (g a) (g b)) (g c));
    Fall
  | Xmahu (d, a, b, c) ->
    alu d (fun () ->
        let hi_mul_u x y =
          let open Int64 in
          let xl = logand x 0xFFFFFFFFL and xh = shift_right_logical x 32 in
          let yl = logand y 0xFFFFFFFFL and yh = shift_right_logical y 32 in
          let ll = mul xl yl in
          let lh = mul xl yh and hl = mul xh yl in
          let carry =
            shift_right_logical
              (add (add (logand lh 0xFFFFFFFFL) (logand hl 0xFFFFFFFFL))
                 (shift_right_logical ll 32))
              32
          in
          add
            (add (mul xh yh) (add (shift_right_logical lh 32) (shift_right_logical hl 32)))
            carry
        in
        Int64.add (hi_mul_u (g a) (g b)) (g c));
    Fall
  | Divs (d, a, b) ->
    alu d (fun () -> if Int64.equal (g b) 0L then 0L else Int64.div (g a) (g b));
    Fall
  | Divu (d, a, b) ->
    alu d (fun () ->
        if Int64.equal (g b) 0L then 0L else Int64.unsigned_div (g a) (g b));
    Fall
  | Rems (d, a, b) ->
    alu d (fun () -> if Int64.equal (g b) 0L then 0L else Int64.rem (g a) (g b));
    Fall
  | Remu (d, a, b) ->
    alu d (fun () ->
        if Int64.equal (g b) 0L then 0L else Int64.unsigned_rem (g a) (g b));
    Fall
  | Padd (w, d, a, b) -> alu d (fun () -> Ia32.Word.lanes_map2 w Int64.add (g a) (g b)); Fall
  | Psub (w, d, a, b) -> alu d (fun () -> Ia32.Word.lanes_map2 w Int64.sub (g a) (g b)); Fall
  | Pmull (w, d, a, b) -> alu d (fun () -> Ia32.Word.lanes_map2 w Int64.mul (g a) (g b)); Fall
  | Pcmpeq (w, d, a, b) ->
    alu d (fun () ->
        Ia32.Word.lanes_map2 w
          (fun x y -> if Int64.equal x y then -1L else 0L)
          (g a) (g b));
    Fall
  | Pshli (w, d, a, n) ->
    alu d (fun () ->
        Ia32.Word.lanes_map2 w
          (fun x _ -> if n >= w * 8 then 0L else Int64.shift_left x n)
          (g a) 0L);
    Fall
  | Pshri (w, d, a, n) ->
    alu d (fun () ->
        Ia32.Word.lanes_map2 w
          (fun x _ -> if n >= w * 8 then 0L else Int64.shift_right_logical x n)
          (g a) 0L);
    Fall
  | Cmp (rel, ct, p1, p2, a, b) ->
    if get_nat m a || get_nat m b then begin
      (* NaT source: both targets cleared (IPF behaviour) *)
      setp m p1 false;
      setp m p2 false
    end
    else begin
      let r = eval_cmp rel (g a) (g b) in
      match ct with
      | Cnorm | Cunc ->
        setp m p1 r;
        setp m p2 (not r)
      | Cand_ ->
        if not r then begin
          setp m p1 false;
          setp m p2 false
        end
      | Cor_ ->
        if r then begin
          setp m p1 true;
          setp m p2 true
        end
    end;
    Fall
  | Cmpi (rel, ct, p1, p2, i, a) ->
    (if get_nat m a then begin
       setp m p1 false;
       setp m p2 false
     end
     else
       let r = eval_cmp rel (Int64.of_int i) (g a) in
       match ct with
       | Cnorm | Cunc ->
         setp m p1 r;
         setp m p2 (not r)
       | Cand_ ->
         if not r then begin
           setp m p1 false;
           setp m p2 false
         end
       | Cor_ ->
         if r then begin
           setp m p1 true;
           setp m p2 true
         end);
    Fall
  | Tbit (p1, p2, a, pos) ->
    if get_nat m a then begin
      setp m p1 false;
      setp m p2 false
    end
    else begin
      let bit =
        Int64.logand (Int64.shift_right_logical (g a) pos) 1L |> Int64.equal 1L
      in
      setp m p1 bit;
      setp m p2 (not bit)
    end;
    Fall
  | Setp (p, v) -> setp m p v; Fall
  | Movpr (d, mask) ->
    let v = ref 0L in
    for p = 63 downto 0 do
      v := Int64.shift_left !v 1;
      if getp m p then v := Int64.logor !v 1L
    done;
    gn d (Int64.logand !v mask);
    Fall
  | Prmov src ->
    let v = g src in
    for p = 1 to 63 do
      setp m p (Int64.logand (Int64.shift_right_logical v p) 1L |> Int64.equal 1L)
    done;
    Fall
  | Ld (size, spec, d, a) -> (
    if get_nat m a then
      if spec = Ld_s || spec = Ld_sa then begin
        set_nat m d;
        (* a stale ALAT entry for d must not let a later chk.a pass *)
        Hashtbl.remove m.alat d;
        Fall
      end
      else raise (Machine_fault (F_nat, 0, size, false))
    else
      let addr = addr_of (g a) in
      m.stats.loads <- m.stats.loads + 1;
      match do_load m ~addr ~size with
      | v ->
        let v = if size = 8 then v else zx size v in
        gn d v;
        m.stats.dcache_stall <- m.stats.dcache_stall + dcache_access m addr;
        if spec = Ld_a || spec = Ld_sa then Hashtbl.replace m.alat d (addr, size);
        Fall
      | exception Machine_fault (k, fa, fs, st) ->
        if spec = Ld_s || spec = Ld_sa then begin
          set_nat m d;
          Hashtbl.remove m.alat d;
          Fall
        end
        else raise (Machine_fault (k, fa, fs, st)))
  | St (size, a, v) ->
    if get_nat m a || get_nat m v then raise (Machine_fault (F_nat, 0, size, true));
    let addr = addr_of (g a) in
    m.stats.stores <- m.stats.stores + 1;
    do_store m ~addr ~size (g v);
    m.stats.dcache_stall <- m.stats.dcache_stall + dcache_access m addr;
    Fall
  | Chk_s (r, t) ->
    if get_nat m r then begin
      m.stats.taken_branches <- m.stats.taken_branches + 1;
      match t with To n -> Jump n | Out reason -> Leave reason
    end
    else Fall
  | Chk_a (r, t) ->
    if Hashtbl.mem m.alat r then Fall
    else begin
      m.stats.taken_branches <- m.stats.taken_branches + 1;
      match t with To n -> Jump n | Out reason -> Leave reason
    end
  | Invala -> Hashtbl.reset m.alat; Fall
  | Ldf (size, d, a) -> (
    if get_nat m a then raise (Machine_fault (F_nat, 0, size, false))
    else
      let addr = addr_of (g a) in
      m.stats.loads <- m.stats.loads + 1;
      match do_load m ~addr ~size with
      | bits ->
        let v =
          if size = 4 then Ia32.Fpconv.f32_of_bits (Int64.to_int (Int64.logand bits 0xFFFFFFFFL))
          else Ia32.Fpconv.f64_of_bits bits
        in
        setf m d v;
        m.stats.dcache_stall <- m.stats.dcache_stall + dcache_access m addr;
        Fall
      | exception Machine_fault (k, fa, fs, st) -> raise (Machine_fault (k, fa, fs, st)))
  | Stf (size, a, v) ->
    if get_nat m a then raise (Machine_fault (F_nat, 0, size, true));
    let addr = addr_of (g a) in
    m.stats.stores <- m.stats.stores + 1;
    let bits =
      if size = 4 then Int64.of_int (Ia32.Fpconv.bits_of_f32 (getf m v))
      else Ia32.Fpconv.bits_of_f64 (getf m v)
    in
    do_store m ~addr ~size bits;
    m.stats.dcache_stall <- m.stats.dcache_stall + dcache_access m addr;
    Fall
  | Fadd (d, a, b) -> setf m d (getf m a +. getf m b); Fall
  | Fsub (d, a, b) -> setf m d (getf m a -. getf m b); Fall
  | Fmul (d, a, b) -> setf m d (getf m a *. getf m b); Fall
  | Fma (d, a, b, c) -> setf m d ((getf m a *. getf m b) +. getf m c); Fall
  | Fdiv (d, a, b) -> setf m d (getf m a /. getf m b); Fall
  | Fsqrt (d, a) -> setf m d (Float.sqrt (getf m a)); Fall
  | Fneg (d, a) -> setf m d (-.getf m a); Fall
  | Fabs_ (d, a) -> setf m d (Float.abs (getf m a)); Fall
  | Fmov (d, a) -> setf m d (getf m a); Fall
  | Frint (d, a) -> setf m d (Ia32.Fpconv.rint (getf m a)); Fall
  | Fmin (d, a, b) ->
    let x = getf m a and y = getf m b in
    setf m d (if Float.is_nan x || Float.is_nan y then y else if x < y then x else y);
    Fall
  | Fmax (d, a, b) ->
    let x = getf m a and y = getf m b in
    setf m d (if Float.is_nan x || Float.is_nan y then y else if x > y then x else y);
    Fall
  | Fcmp (rel, p1, p2, a, b) ->
    let x = getf m a and y = getf m b in
    let r =
      match rel with
      | Feq -> x = y
      | Flt -> x < y
      | Fle -> x <= y
      | Funord -> Float.is_nan x || Float.is_nan y
    in
    setp m p1 r;
    setp m p2 (not r);
    Fall
  | Fcvt_xf (d, a) -> setf m d (Int64.to_float (g a)); Fall
  | Fcvt_fx (d, a) ->
    gn d (Int64.of_float (Ia32.Fpconv.rint (getf m a)));
    Fall
  | Fcvt_fxt (d, a) -> gn d (Int64.of_float (Float.trunc (getf m a))); Fall
  | Fcvt_32 (d, a) ->
    setf m d (Ia32.Fpconv.f32_of_bits (Ia32.Fpconv.bits_of_f32 (getf m a)));
    Fall
  | Getf_s (d, a) -> gn d (Int64.of_int (Ia32.Fpconv.bits_of_f32 (getf m a))); Fall
  | Getf_d (d, a) -> gn d (Ia32.Fpconv.bits_of_f64 (getf m a)); Fall
  | Setf_s (d, a) ->
    if get_nat m a then raise (Machine_fault (F_nat, 0, 4, false));
    setf m d (Ia32.Fpconv.f32_of_bits (Int64.to_int (Int64.logand (g a) 0xFFFFFFFFL)));
    Fall
  | Setf_d (d, a) ->
    if get_nat m a then raise (Machine_fault (F_nat, 0, 8, false));
    setf m d (Ia32.Fpconv.f64_of_bits (g a));
    Fall
  | Br t -> (
    m.stats.taken_branches <- m.stats.taken_branches + 1;
    match t with To n -> Jump n | Out reason -> Leave reason)
  | Br_ind b ->
    m.stats.taken_branches <- m.stats.taken_branches + 1;
    Jump m.br.(b)
  | Mov_to_br (b, a) -> m.br.(b) <- Int64.to_int (g a); Fall
  | Mov_from_br (d, b) -> gn d (Int64.of_int m.br.(b)); Fall
  | Hotc (s, threshold, id) ->
    let c = m.hotc.(s) + 1 in
    if c >= threshold then begin
      (* reset the slot before leaving, like the stub path resets the
         arena counter at heat time, so a re-dispatch restarts cold *)
      m.hotc.(s) <- 0;
      m.stats.taken_branches <- m.stats.taken_branches + 1;
      Leave (Heat id)
    end
    else begin
      m.hotc.(s) <- c;
      Fall
    end
  | Edgec s ->
    let c = m.edgec.(s) in
    if c < edgec_saturate then m.edgec.(s) <- c + 1;
    Fall
  | Nop _ -> Fall

(* ---- timing ----------------------------------------------------------- *)

let latency_of m insn =
  let c = m.cost in
  match insn.Insn.sem with
  | Insn.Ld _ -> c.Cost.load_latency
  | Insn.Ldf _ -> c.Cost.fp_load_latency
  | Insn.Xma _ | Insn.Xmau _ | Insn.Xmah _ | Insn.Xmahu _ | Insn.Pmull _ ->
    c.Cost.mul_latency
  | Insn.Fadd _ | Insn.Fsub _ | Insn.Fmul _ | Insn.Fma _ | Insn.Fmin _
  | Insn.Fmax _ | Insn.Fneg _ | Insn.Fabs_ _ | Insn.Fmov _ | Insn.Frint _
  | Insn.Fcvt_xf _ | Insn.Fcvt_fx _
  | Insn.Fcvt_fxt _ | Insn.Fcvt_32 _ ->
    c.Cost.fp_latency
  | Insn.Fdiv _ | Insn.Divs _ | Insn.Divu _ | Insn.Rems _ | Insn.Remu _ ->
    c.Cost.fp_div_latency
  | Insn.Fsqrt _ -> c.Cost.fp_sqrt_latency
  | Insn.Getf_s _ | Insn.Getf_d _ | Insn.Setf_s _ | Insn.Setf_d _ ->
    c.Cost.xfer_latency
  | _ -> c.Cost.alu_latency

let slot_weight insn =
  match insn.Insn.sem with Insn.Movi _ -> 2 | _ -> 1

(* Advance the cycle counter, attributing the delta to the current bundle's
   bucket. *)
let charge m delta =
  if delta > 0 then begin
    m.stats.cycles <- m.stats.cycles + delta;
    let b = m.bucket_fn m.ip in
    m.buckets.(b land 7) <- m.buckets.(b land 7) + delta;
    match m.charge_probe with Some f -> f m.ip delta | None -> ()
  end

(* Group accounting: called when a group closes. [srcs_ready] is the max
   ready cycle over registers the group read; [weight] its slot weight. *)
let close_group m ~srcs_ready ~weight ~extra =
  let issue = max (m.stats.cycles + 1) srcs_ready in
  let span = (weight + m.cost.Cost.issue_slots - 1) / m.cost.Cost.issue_slots in
  charge m (issue + span - 1 + extra - m.stats.cycles);
  m.stats.groups <- m.stats.groups + 1;
  issue

(* ---- main run loop ---------------------------------------------------- *)

(* Runs from [m.ip] until an exit, a fault, or [fuel] retired slots. *)
let run ?(fuel = max_int) m =
  let fuel_left = ref fuel in
  (* group state *)
  let gweight = ref 0 in
  let gsrcs = ref 0 in
  let gextra = ref 0 in
  let gwrites : (Insn.res, int) Hashtbl.t = Hashtbl.create 16 in
  let reg_ready = function
    | Insn.Rgr r -> m.ready.(r)
    | Insn.Rfr f -> m.fready.(f)
    | Insn.Rpr _ | Insn.Rbr _ | Insn.Rmem -> 0
  in
  let flush_group () =
    if !gweight > 0 then begin
      let issue = close_group m ~srcs_ready:!gsrcs ~weight:!gweight ~extra:!gextra in
      Hashtbl.iter
        (fun res lat ->
          match res with
          | Insn.Rgr r -> m.ready.(r) <- issue + lat
          | Insn.Rfr f -> m.fready.(f) <- issue + lat
          | _ -> ())
        gwrites;
      Hashtbl.reset gwrites;
      gweight := 0;
      gsrcs := 0;
      gextra := 0
    end
  in
  (* dcache-stall watermark between [account] and [commit_timing]; a ref
     cell rather than a returned tuple+closure pair keeps the step loop
     allocation-free *)
  let stall_before = ref 0 in
  let account insn =
    (* intra-group RAW: conservatively split the group *)
    let raw =
      List.exists (fun r -> Hashtbl.mem gwrites r) (Insn.reads insn)
    in
    if raw then flush_group ();
    stall_before := m.stats.dcache_stall;
    List.iter (fun r -> gsrcs := max !gsrcs (reg_ready r)) (Insn.reads insn);
    gweight := !gweight + slot_weight insn
  in
  let commit_timing insn =
    (* dcache stalls observed during exec extend the group *)
    gextra := !gextra + (m.stats.dcache_stall - !stall_before);
    List.iter
      (fun r -> Hashtbl.replace gwrites r (latency_of m insn))
      (Insn.writes insn)
  in
  let rec step () =
    if !fuel_left <= 0 then begin
      flush_group ();
      Fuel
    end
    else begin
      let bundle = Tcache.get m.tcache m.ip in
      (match m.watch with
      | Some (b, regs) when m.slot = 0 && b = m.ip ->
        Printf.eprintf "[watch ip=%d" m.ip;
        List.iter
          (fun r ->
            if r < 200 then Printf.eprintf " r%d=%Lx" r (get m r)
            else Printf.eprintf " p%d=%b" (r - 200) (getp m (r - 200)))
          regs;
        Printf.eprintf "]\n%!"
      | _ -> ());
      let insn = bundle.Bundle.slots.(m.slot) in
      let stop_after = bundle.Bundle.stops.(m.slot) in
      decr fuel_left;
      (match insn.Insn.sem with
      | Insn.Br (Insn.Out (Insn.Spec_fail _)) ->
        m.stats.spec_checks <- m.stats.spec_checks + 1
      | _ -> ());
      let enabled =
        match insn.Insn.qp with Some p -> getp m p | None -> true
      in
      account insn;
      let advance () =
        if m.slot = 2 then begin
          m.ip <- m.ip + 1;
          m.slot <- 0
        end
        else m.slot <- m.slot + 1;
        if stop_after then flush_group ()
      in
      if not enabled then begin
        commit_timing insn;
        (match insn.Insn.sem with
        | Insn.Nop _ -> ()
        | _ -> m.stats.slots_retired <- m.stats.slots_retired + 1);
        advance ();
        step ()
      end
      else
        match exec_sem m insn with
        | Fall ->
          commit_timing insn;
          (match insn.Insn.sem with
          | Insn.Nop _ -> ()
          | _ -> m.stats.slots_retired <- m.stats.slots_retired + 1);
          advance ();
          step ()
        | Jump n ->
          commit_timing insn;
          m.stats.slots_retired <- m.stats.slots_retired + 1;
          flush_group ();
          charge m m.cost.Cost.taken_branch_penalty;
          (match insn.Insn.sem with
          | Insn.Br_ind _ -> charge m m.cost.Cost.indirect_branch_penalty
          | _ -> ());
          m.ip <- n;
          m.slot <- 0;
          step ()
        | Leave reason ->
          commit_timing insn;
          m.stats.slots_retired <- m.stats.slots_retired + 1;
          flush_group ();
          m.last_exit <- (m.ip, m.slot);
          (* advance past the exit so a resume continues after it *)
          advance ();
          Exited reason
        | exception Machine_fault (kind, addr, size, store) ->
          flush_group ();
          Faulted { kind; addr; size; store; ip = m.ip; slot = m.slot }
    end
  in
  step ()
