(* Cost-model parameters for the EPIC machine and the translator runtime.

   Absolute values are not calibrated against real Itanium 2 silicon; they
   are chosen so the *relationships* the paper's evaluation depends on hold:
   wide in-order issue rewards scheduling quality, cross-register-file moves
   are expensive, OS-handled misalignment costs thousands of cycles, and
   translation overhead is charged per translated instruction with hot
   translation ~20x cold translation per IA-32 instruction. *)

type t = {
  issue_slots : int; (* slots issued per cycle (2 bundles x 3) *)
  taken_branch_penalty : int;
  indirect_branch_penalty : int;
  alu_latency : int;
  mul_latency : int; (* xma and parallel multiplies *)
  load_latency : int; (* L1 hit, int side *)
  fp_load_latency : int;
  fp_latency : int; (* fadd/fmul/fma *)
  fp_div_latency : int; (* modeled frcpa + Newton iterations *)
  fp_sqrt_latency : int;
  xfer_latency : int; (* getf/setf: GR <-> FR moves — expensive on IPF *)
  os_misalign_cost : int; (* OS-handled misaligned access (paper: ~1000s) *)
  hw_misalign_cost : int; (* microcode-split access when HW handles it *)
  (* translator runtime costs, in cycles *)
  interp_per_insn : int; (* interpretation cost per IA-32 instruction *)
  cold_translate_per_insn : int; (* per IA-32 instruction *)
  hot_translate_per_insn : int; (* ~20x cold, per paper *)
  dispatch_cost : int; (* block-cache lookup + patching on a miss path *)
  indirect_lookup_cost : int; (* fast lookup table hit in translated code *)
  exception_filter_cost : int; (* per delivered IA-32 exception *)
  syscall_cost : int; (* native execution of an IA-32 system service *)
  context_switch_cost : int; (* scheduler overhead per guest-thread switch *)
}

let default =
  {
    issue_slots = 6;
    taken_branch_penalty = 1;
    indirect_branch_penalty = 3;
    alu_latency = 1;
    mul_latency = 4;
    load_latency = 2;
    fp_load_latency = 6;
    fp_latency = 4;
    fp_div_latency = 24;
    fp_sqrt_latency = 24;
    xfer_latency = 5;
    os_misalign_cost = 2500;
    hw_misalign_cost = 40;
    interp_per_insn = 45;
    cold_translate_per_insn = 40;
    hot_translate_per_insn = 800;
    dispatch_cost = 60;
    indirect_lookup_cost = 12;
    exception_filter_cost = 4000;
    syscall_cost = 150;
    context_switch_cost = 120;
  }
