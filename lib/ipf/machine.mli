(** The EPIC machine: executes bundles from a {!Tcache} against guest
    memory, with grouped-issue timing.

    Semantics are sequential per slot; {e timing} models the in-order
    grouped pipeline: each instruction group (delimited by stop bits)
    issues when its source registers are ready, spans
    [ceil(weight / issue_slots)] cycles, and writes its destinations'
    ready cycles at issue + latency. An intra-group RAW dependence
    conservatively splits the group. Data-cache stalls extend the
    group of the load that missed.

    Every cycle charged is attributed to a bucket chosen by [bucket_fn]
    from the current bundle index, which is how the engine splits time
    between cold and hot translated code without leaving the machine. *)

type fault_kind =
  | F_misalign  (** access not naturally aligned *)
  | F_page  (** access to unmapped / protection-violating memory *)
  | F_nat  (** NaT consumption by a non-speculative instruction *)

type fault = {
  kind : fault_kind;
  addr : int;
  size : int;
  store : bool;
  ip : int;  (** bundle index of the faulting instruction *)
  slot : int;
}

(** Why {!run} returned. *)
type stop = Exited of Insn.exit_reason | Faulted of fault | Fuel

exception Machine_fault of fault_kind * int * int * bool
(** Internal signal for memory faults: kind, addr, size, store. *)

type stats = {
  mutable cycles : int;
  mutable groups : int;
  mutable slots_retired : int;  (** non-nop slots *)
  mutable loads : int;
  mutable stores : int;
  mutable taken_branches : int;
  mutable dcache_stall : int;
  mutable spec_checks : int;  (** executed speculation-check branches *)
}

val fresh_stats : unit -> stats

type t = {
  gr : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (** 128 general registers; [r0] reads as zero. A [Bigarray] so the
          pre-decoded core can commit fresh values without boxing them. *)
  nat : bool array;
  fr : float array;  (** 128 floating registers; [f0]=0.0, [f1]=1.0 *)
  fnat : bool array;
  pr : bool array;  (** 64 predicates; [p0] is always true *)
  br : int array;  (** 8 branch registers holding bundle indices *)
  mem : Ia32.Memory.t;
  tcache : Tcache.t;
  dcache : Dcache.t;
  cost : Cost.t;
  alat : (int, int * int) Hashtbl.t;  (** ALAT: GR -> (addr, size) *)
  ready : int array;  (** ready cycle per GR (timing only) *)
  fready : int array;  (** ready cycle per FR *)
  stats : stats;
  mutable ip : int;  (** current bundle index *)
  mutable slot : int;
  mutable bucket_fn : int -> int;
      (** maps a bundle index to a cycle-attribution bucket (0..7) *)
  buckets : int array;
  mutable charge_probe : (int -> int -> unit) option;
      (** observability probe mirroring every charge (bundle index,
          delta); must not touch machine state *)
  mutable last_exit : int * int;
      (** bundle/slot of the most recent [Out _] exit branch taken, used
          by the engine to chain blocks *)
  mutable dc_skip_lo : int;
      (** address range [\[dc_skip_lo, dc_skip_hi)] whose loads/stores
          bypass the dcache model — the translator's profile arena, so
          instrumentation traffic never perturbs modeled guest cycles *)
  mutable dc_skip_hi : int;
  watch : (int * int list) option;
      (** IPF_WATCH debug hook, parsed once from the environment *)
  hotc : int array;
      (** hot-counter table bumped by {!Insn.Hotc} pseudo-ops; machine-
          owned so counter traffic never touches the modeled dcache *)
  edgec : int array;  (** taken-edge counters bumped by {!Insn.Edgec} *)
}

val counter_slots : int
(** Size (power of two) of the [hotc]/[edgec] tables. *)

val counter_slot : int -> int
(** Hash a guest address to a counter slot. Shared by the translator
    (slot assignment at emission) and the engine's profile reader; two
    addresses may alias one slot, which merely heats the pair earlier. *)

val edgec_saturate : int
(** Ceiling at which [edgec] slots stop counting. *)

val create : ?cost:Cost.t -> ?dcache:Dcache.t -> Ia32.Memory.t -> Tcache.t -> t

val dcache_access : t -> int -> int
(** Dcache-model stall cycles for an access at an address — 0 inside the
    [dc_skip] range, {!Dcache.access} otherwise. The single charge point
    for all load/store cost in both the interpreter and the pre-decoded
    fast path. *)

(** {1 Register access} *)

val get : t -> Insn.gr -> int64
val get_nat : t -> Insn.gr -> bool
val set : t -> Insn.gr -> int64 -> unit

val set_nat : t -> Insn.gr -> unit
(** Mark a GR's NaT bit (deferred speculative fault). *)

val getf : t -> Insn.fr -> float
val setf : t -> Insn.fr -> float -> unit
val getp : t -> Insn.pr -> bool
val setp : t -> Insn.pr -> bool -> unit

val get32 : t -> Insn.gr -> int
(** Low 32 bits of a GR as a non-negative int (IA-32 state lives in the
    low halves of canonic GRs). *)

val set32 : t -> Insn.gr -> int -> unit

val charge : t -> int -> unit
(** Advance the cycle counter, attributing to the current bundle's
    bucket. The engine uses this to price runtime events (translation,
    dispatch, OS work) in machine time. *)

val run : ?fuel:int -> t -> stop
(** Execute from [t.ip] until an exit branch leaves the translation
    cache, a fault is raised, or [fuel] retired slots are spent. *)

(** {1 Execution-core internals}

    Shared with {!Exec}, the pre-decoded fast path, which must replicate
    this module's semantics and timing bit-for-bit (DESIGN.md §10). *)

val addr_of : int64 -> int
(** Low 32 bits of a GR as a guest address. *)

val do_load : t -> addr:int -> size:int -> int64
(** @raise Machine_fault on misalignment or page fault. *)

val do_store : t -> addr:int -> size:int -> int64 -> unit
(** Stores, invalidating overlapping ALAT entries.
    @raise Machine_fault on misalignment or page fault. *)

val mask_of_len : int -> int64
val eval_cmp : Insn.cmp_rel -> int64 -> int64 -> bool

val latency_of : t -> Insn.t -> int
(** Result latency class of an instruction under [t.cost]. *)

val slot_weight : Insn.t -> int
(** Issue weight of one slot (long immediates consume two). *)

val close_group : t -> srcs_ready:int -> weight:int -> extra:int -> int
(** Charge one closing instruction group and return its issue cycle. *)

val watch_spec : (int * int list) option Lazy.t
(** The process-wide IPF_WATCH parse backing [t.watch]. *)
