(* Two-level set-associative LRU data-cache model. Only timing is modeled
   (contents live in guest memory); each access returns the extra stall
   cycles beyond the pipeline's L1 load latency.

   The second level is what makes the paper's mcf observation reproducible:
   the 32-bit-data IA-32 version of a pointer-chasing workload fits where
   the 64-bit native version does not. *)

type level = {
  sets : int;
  assoc : int;
  line_bits : int;
  tags : int array array; (* [set].[way]; -1 = invalid *)
  lru : int array array; (* smaller = older *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let make_level ~size ~assoc ~line =
  let sets = size / (assoc * line) in
  let line_bits =
    let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
    bits line 0
  in
  {
    sets;
    assoc;
    line_bits;
    tags = Array.init sets (fun _ -> Array.make assoc (-1));
    lru = Array.init sets (fun _ -> Array.make assoc 0);
    tick = 0;
    hits = 0;
    misses = 0;
  }

(* true = hit; on miss the line is filled. *)
let access_level l addr =
  let line = addr lsr l.line_bits in
  let set = line mod l.sets in
  let tags = l.tags.(set) and lru = l.lru.(set) in
  l.tick <- l.tick + 1;
  let rec find w =
    if w >= l.assoc then None else if tags.(w) = line then Some w else find (w + 1)
  in
  match find 0 with
  | Some w ->
    lru.(w) <- l.tick;
    l.hits <- l.hits + 1;
    true
  | None ->
    let victim = ref 0 in
    for w = 1 to l.assoc - 1 do
      if lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    lru.(!victim) <- l.tick;
    l.misses <- l.misses + 1;
    false

type t = {
  l1 : level;
  l2 : level;
  l2_penalty : int;
  mem_penalty : int;
}

let create ?(l1_size = 16 * 1024) ?(l1_assoc = 4) ?(l1_line = 64)
    ?(l2_size = 256 * 1024) ?(l2_assoc = 8) ?(l2_line = 128) ?(l2_penalty = 7)
    ?(mem_penalty = 80) () =
  {
    l1 = make_level ~size:l1_size ~assoc:l1_assoc ~line:l1_line;
    l2 = make_level ~size:l2_size ~assoc:l2_assoc ~line:l2_line;
    l2_penalty;
    mem_penalty;
  }

(* Extra stall cycles for an access at [addr] (0 on an L1 hit). *)
let access t addr =
  if access_level t.l1 addr then 0
  else if access_level t.l2 addr then t.l2_penalty
  else t.l2_penalty + t.mem_penalty

type stats = {
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
}

let stats t =
  {
    l1_hits = t.l1.hits;
    l1_misses = t.l1.misses;
    l2_hits = t.l2.hits;
    l2_misses = t.l2.misses;
  }

let reset_stats t =
  t.l1.hits <- 0;
  t.l1.misses <- 0;
  t.l2.hits <- 0;
  t.l2.misses <- 0

(* ---- checkpoint / restore: the timing model is pure state (tags, LRU
   ranks, tick and hit/miss counters per level), so a snapshot is a deep
   copy and restore blits it back in place. *)

type level_checkpoint = {
  k_tags : int array array;
  k_lru : int array array;
  k_tick : int;
  k_hits : int;
  k_misses : int;
}

type checkpoint = { k_l1 : level_checkpoint; k_l2 : level_checkpoint }

let checkpoint_level l =
  {
    k_tags = Array.map Array.copy l.tags;
    k_lru = Array.map Array.copy l.lru;
    k_tick = l.tick;
    k_hits = l.hits;
    k_misses = l.misses;
  }

let restore_level l k =
  Array.iteri (fun i a -> Array.blit k.k_tags.(i) 0 a 0 (Array.length a)) l.tags;
  Array.iteri (fun i a -> Array.blit k.k_lru.(i) 0 a 0 (Array.length a)) l.lru;
  l.tick <- k.k_tick;
  l.hits <- k.k_hits;
  l.misses <- k.k_misses

let checkpoint t = { k_l1 = checkpoint_level t.l1; k_l2 = checkpoint_level t.l2 }

let restore t k =
  restore_level t.l1 k.k_l1;
  restore_level t.l2 k.k_l2
