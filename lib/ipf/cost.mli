(** Cost-model parameters for the EPIC machine and the translator runtime.

    Absolute values are not calibrated against real Itanium 2 silicon;
    they are chosen so the {e relationships} the paper's evaluation
    depends on hold: wide in-order issue rewards scheduling quality,
    cross-register-file moves are expensive, OS-handled misalignment
    costs thousands of cycles, and translation overhead is charged per
    translated instruction with hot translation roughly 20x cold
    translation per IA-32 instruction (paper §2). *)

type t = {
  issue_slots : int;  (** slots issued per cycle (2 bundles x 3) *)
  taken_branch_penalty : int;
  indirect_branch_penalty : int;
  alu_latency : int;
  mul_latency : int;  (** [xma] and parallel multiplies *)
  load_latency : int;  (** L1 hit, integer side *)
  fp_load_latency : int;
  fp_latency : int;  (** fadd/fmul/fma *)
  fp_div_latency : int;  (** modeled [frcpa] + Newton iterations *)
  fp_sqrt_latency : int;
  xfer_latency : int;
      (** [getf]/[setf]: GR-FR moves, expensive on IPF and the reason
          MMX-on-FR aliasing needs mode speculation *)
  os_misalign_cost : int;
      (** OS-handled misaligned access (paper: thousands of cycles) *)
  hw_misalign_cost : int;
      (** microcode-split access when hardware handles it (Xeon model) *)
  interp_per_insn : int;  (** interpretation cost per IA-32 instruction *)
  cold_translate_per_insn : int;  (** per IA-32 instruction *)
  hot_translate_per_insn : int;  (** roughly 20x cold, per the paper *)
  dispatch_cost : int;  (** block-cache lookup + patching on a miss *)
  indirect_lookup_cost : int;  (** fast-lookup-table hit in hot code *)
  exception_filter_cost : int;  (** per delivered IA-32 exception *)
  syscall_cost : int;  (** native execution of an IA-32 system service *)
  context_switch_cost : int;  (** scheduler overhead per guest-thread switch *)
}

val default : t
