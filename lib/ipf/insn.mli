(** Instruction set of the EPIC (Itanium-like) target machine.

    This is the vocabulary the translator emits and the {!Machine}
    executes: predicated three-operand RISC operations over 128 general
    registers (with NaT bits), 128 floating registers, 64 predicates and
    8 branch registers, plus control speculation ([ld.s]/[chk.s]), data
    speculation ([ld.a]/[chk.a]) and the translator's own exit branches.

    Deviations from real IPF (all documented in DESIGN.md): integer
    division is a pseudo-op costed as the [frcpa] + Newton sequence,
    [Movi] models [movl] as one double-width slot, and branch targets are
    translation-cache bundle indices rather than addresses. *)

type gr = int
(** General register number, [0..127]; [r0] reads as zero. *)

type fr = int
(** Floating register number, [0..127]; [f0] = 0.0 and [f1] = 1.0. *)

type pr = int
(** Predicate register number, [0..63]; [p0] is always true. *)

type br = int
(** Branch register number, [0..7]. *)

(** Functional-unit kind, used for bundle template placement. *)
type unit_kind = M | I | F | B

(** Integer compare relations ([u] = unsigned). *)
type cmp_rel = Ceq | Cne | Clt | Cle | Cgt | Cge | Cltu | Cleu | Cgtu | Cgeu

val cmp_rel_name : cmp_rel -> string

(** Compare types: normal (sets both predicates), unconditional (also
    clears when qualified false), parallel and/or. *)
type cmp_type = Cnorm | Cunc | Cand_ | Cor_

(** Floating compare relations; [Funord] is true iff either operand is
    NaN. *)
type fcmp_rel = Feq | Flt | Fle | Funord

(** Load speculation flavour: none, control ([ld.s]), data ([ld.a]), or
    both ([ld.sa]). *)
type ld_spec = Ld_none | Ld_s | Ld_a | Ld_sa

(** Why translated code leaves the translation cache and re-enters the
    translator runtime. The machine treats these opaquely and reports
    them through {!Machine.stop}. *)
type exit_reason =
  | Dispatch of int  (** IA-32 target address; block not yet chained *)
  | Indirect  (** IA-32 target in [Regs.r_btarget]; needs a lookup *)
  | Heat of int  (** cold block id whose use counter hit the threshold *)
  | Syscall of int  (** IA-32 [int n] *)
  | Misalign_regen of int  (** block id: stage-1 misalignment trigger *)
  | Smc of int  (** block id invalidated by a code-page store *)
  | Spec_fail of int * int
      (** block id, check id: FP/MMX/SSE speculation miss at a block head *)
  | Guest_fault of int * int
      (** IA-32 ip, IA-32 exception vector (e.g. 0 = [#DE]) *)
  | Nat_recover of int
      (** block id: a [chk.s] found a deferred speculative-load fault;
          the engine restores the commit point and rolls forward so the
          fault is re-raised precisely *)
  | Exit_program

val exit_reason_name : exit_reason -> string

(** A branch target: a bundle index inside the translation cache, or an
    exit to the translator runtime. *)
type target = To of int | Out of exit_reason

(** Instruction semantics. Conventions: destination first; immediate
    forms take the immediate before the source ([Addi (d, imm, s)] is
    [d = imm + s]). *)
type sem =
  | Add of gr * gr * gr
  | Sub of gr * gr * gr
  | Addi of gr * int * gr
  | Subi of gr * int * gr  (** [d = imm - s] *)
  | And of gr * gr * gr
  | Or of gr * gr * gr
  | Xor of gr * gr * gr
  | Andcm of gr * gr * gr  (** [d = s1 land lnot s2] *)
  | Andi of gr * int * gr
  | Ori of gr * int * gr
  | Xori of gr * int * gr
  | Shl of gr * gr * gr
  | Shli of gr * gr * int
  | Shru of gr * gr * gr
  | Shrui of gr * gr * int
  | Shrs of gr * gr * gr
  | Shrsi of gr * gr * int
  | Dep of gr * gr * gr * int * int
      (** [Dep (d, src, bse, pos, len)]: deposit [src] into [bse] *)
  | Depz of gr * gr * int * int  (** deposit into zero *)
  | Extr of gr * gr * int * int  (** signed bit-field extract [pos,len] *)
  | Extru of gr * gr * int * int  (** unsigned extract *)
  | Sxt of gr * gr * int  (** sign-extend the low [bytes] *)
  | Zxt of gr * gr * int  (** zero-extend the low [bytes] *)
  | Mov of gr * gr
  | Movi of gr * int64  (** [movl]: long immediate, double slot weight *)
  | Mix of gr * gr * gr  (** lane-shuffle helper *)
  | Popcnt of gr * gr
  | Divs of gr * gr * gr
      (** division pseudo-ops, costed as the FP reciprocal sequence *)
  | Divu of gr * gr * gr
  | Rems of gr * gr * gr
  | Remu of gr * gr * gr
  | Xma of gr * gr * gr * gr  (** [d = s1*s2 + s3], low 64, signed (F) *)
  | Xmau of gr * gr * gr * gr
  | Xmah of gr * gr * gr * gr  (** signed high 64 bits *)
  | Xmahu of gr * gr * gr * gr
  | Padd of int * gr * gr * gr  (** parallel add; lane bytes 1/2/4/8 *)
  | Psub of int * gr * gr * gr
  | Pmull of int * gr * gr * gr
  | Pcmpeq of int * gr * gr * gr
  | Pshli of int * gr * gr * int
  | Pshri of int * gr * gr * int
  | Cmp of cmp_rel * cmp_type * pr * pr * gr * gr
      (** [Cmp (rel, ty, p1, p2, a, b)]: [p1 = a rel b], [p2 = not p1] *)
  | Cmpi of cmp_rel * cmp_type * pr * pr * int * gr
  | Tbit of pr * pr * gr * int  (** [p1 = bit pos of src], [p2 = not] *)
  | Setp of pr * bool  (** set a predicate to a constant *)
  | Movpr of gr * int64  (** save the predicate file under a mask *)
  | Prmov of gr  (** restore the predicate file; scheduling barrier *)
  | Ld of int * ld_spec * gr * gr  (** [Ld (size, spec, dst, addr)] *)
  | St of int * gr * gr  (** [St (size, addr, src)] *)
  | Chk_s of gr * target  (** branch to recovery if the GR's NaT is set *)
  | Chk_a of gr * target  (** branch to recovery if the ALAT entry died *)
  | Invala  (** flush the ALAT *)
  | Ldf of int * fr * gr  (** FP load; size 4 = single, 8 = double *)
  | Stf of int * gr * fr
  | Fadd of fr * fr * fr
  | Fsub of fr * fr * fr
  | Fmul of fr * fr * fr
  | Fma of fr * fr * fr * fr  (** [d = a*b + c] *)
  | Fdiv of fr * fr * fr
  | Fsqrt of fr * fr
  | Fneg of fr * fr
  | Fabs_ of fr * fr
  | Fmov of fr * fr
  | Frint of fr * fr  (** round to integral value, ties to even *)
  | Fmin of fr * fr * fr  (** IA-32 MIN semantics: src2 on NaN/equal *)
  | Fmax of fr * fr * fr
  | Fcmp of fcmp_rel * pr * pr * fr * fr
  | Fcvt_xf of fr * gr  (** signed int64 to float *)
  | Fcvt_fx of gr * fr  (** float to int64, round to nearest even *)
  | Fcvt_fxt of gr * fr  (** float to int64, truncate *)
  | Fcvt_32 of fr * fr  (** round double to single precision *)
  | Getf_s of gr * fr  (** single-precision bit image of an FR *)
  | Getf_d of gr * fr
  | Setf_s of fr * gr
  | Setf_d of fr * gr
  | Br of target  (** branch, conditional via the qualifying predicate *)
  | Br_ind of br  (** indirect branch within the translation cache *)
  | Mov_to_br of br * gr
  | Mov_from_br of gr * br
  | Hotc of int * int * int
      (** [Hotc (slot, threshold, block_id)]: single-slot saturating hot
          counter over the machine-owned table — increments the slot and,
          at the threshold, resets it and leaves with [Heat block_id] *)
  | Edgec of int
      (** [Edgec slot]: saturating taken-edge counter bump (predicated on
          the branch condition); never branches *)
  | Nop of unit_kind

type t = { qp : pr option; sem : sem }
(** An instruction: semantics optionally qualified by a predicate. *)

val mk : ?qp:pr -> sem -> t

val unit_of : sem -> unit_kind
(** Functional unit that executes the instruction ([I]-kind ALU
    instructions also fit [M] slots; see {!Bundle.kind_fits}). *)

(** A resource read or written, for dependence analysis. *)
type res = Rgr of int | Rfr of int | Rpr of int | Rbr of int | Rmem

val reads : t -> res list
(** Resources the instruction reads, including its qualifying predicate. *)

val writes : t -> res list
(** Resources written. [Chk_s]/[Chk_a] report their register so
    dependence analysis orders consumers of a speculative load after its
    check. *)

val is_branch : t -> bool
val is_memory : t -> bool
val is_store : t -> bool

val pp_target : Format.formatter -> target -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val map_regs : g:(gr -> gr) -> f:(fr -> fr) -> p:(pr -> pr) -> t -> t
(** Rename every register operand (used by the hot-phase renamer). *)
