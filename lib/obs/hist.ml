(* Log-bucketed (HDR-style) histograms over non-negative integers.

   Values below [sub] (16) are exact; above that, each power-of-two
   octave is split into [sub] sub-buckets, so relative error is bounded
   by 1/16 (~6%) at any magnitude while the whole histogram stays one
   flat int array — recording is two array writes and four scalar
   updates, no allocation, deterministic. Percentiles are reported as
   the lower bound of the covering bucket, which keeps them exact below
   16 and within one sub-bucket above.

   A [set] bundles the six engine latency/size distributions the paper's
   cost-accounting argument needs (DESIGN.md §14); all six serialize
   into the metrics JSON ["hist"] section under ia32el-metrics/2. *)

let sub_bits = 4
let sub = 1 lsl sub_bits

(* 62-bit values need (62 - sub_bits + 1) * sub = 944 buckets; round up. *)
let n_buckets = 960

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; vmin = max_int;
    vmax = 0 }

let clear t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

(* Index of the bucket covering [v] (v >= 0): identity below [sub]; else
   with [m] the msb position, octave [m - sub_bits] shifted down to a
   [sub..2*sub) mantissa. Continuous at v = sub. *)
let bucket_index v =
  if v < sub then v
  else begin
    let m = ref 0 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      incr m
    done;
    let e = !m - sub_bits in
    ((e + 1) * sub) + ((v lsr e) - sub)
  end

(* Smallest value the bucket at [i] covers — the inverse lower bound. *)
let bucket_lo i =
  if i < sub then i else (sub + (i mod sub)) lsl ((i / sub) - 1)

let record t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_index v in
  let i = if i >= n_buckets then n_buckets - 1 else i in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = t.vmax

(* Lower bound of the bucket holding the q-quantile (0 < q <= 1): walk
   the cumulative counts to ceil(q * count). *)
let percentile t q =
  if t.count = 0 then 0
  else begin
    let need =
      let n = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if n < 1 then 1 else if n > t.count then t.count else n
    in
    let rec walk i cum =
      if i >= n_buckets then t.vmax
      else
        let cum = cum + t.buckets.(i) in
        if cum >= need then bucket_lo i else walk (i + 1) cum
    in
    walk 0 0
  end

(* Sparse export: [lo, count] pairs for every non-empty bucket, ascending
   — enough to reconstruct the shape without 960 zeroes per histogram. *)
let to_json t =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then
      buckets :=
        Metrics.List [ Metrics.Int (bucket_lo i); Metrics.Int t.buckets.(i) ]
        :: !buckets
  done;
  Metrics.Obj
    [
      ("count", Metrics.Int t.count);
      ("sum", Metrics.Int t.sum);
      ("min", Metrics.Int (min_value t));
      ("max", Metrics.Int t.vmax);
      ("p50", Metrics.Int (percentile t 0.50));
      ("p90", Metrics.Int (percentile t 0.90));
      ("p99", Metrics.Int (percentile t 0.99));
      ("buckets", Metrics.List !buckets);
    ]

(* ---- the engine's histogram set --------------------------------------- *)

type set = {
  syscall_latency : t;  (* virtual cycles per syscall, kernel + idle *)
  futex_wait : t;  (* virtual cycles blocked per futex wait *)
  trace_length : t;  (* IA-32 insns per hot superblock *)
  tcache_probe_depth : t;  (* block-cache page-chain length per indirect *)
  translate_block : t;  (* translation cycles charged per block *)
  snapshot_cost : t;  (* host microseconds per snapshot/revert *)
}

let create_set () =
  {
    syscall_latency = create ();
    futex_wait = create ();
    trace_length = create ();
    tcache_probe_depth = create ();
    translate_block = create ();
    snapshot_cost = create ();
  }

let set_fields s =
  [
    ("syscall_latency", s.syscall_latency);
    ("futex_wait", s.futex_wait);
    ("trace_length", s.trace_length);
    ("tcache_probe_depth", s.tcache_probe_depth);
    ("translate_block", s.translate_block);
    ("snapshot_cost", s.snapshot_cost);
  ]

let set_to_json s = List.map (fun (k, h) -> (k, to_json h)) (set_fields s)

let pp ppf t =
  if t.count = 0 then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf "n=%d min=%d p50=%d p90=%d p99=%d max=%d" t.count
      (min_value t) (percentile t 0.50) (percentile t 0.90)
      (percentile t 0.99) t.vmax
