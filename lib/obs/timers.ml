(* Host-side phase wall-timers.

   Answers "where does *host* time go" — translate vs execute vs
   persistent-cache I/O vs snapshot/revert — as a complement to the
   deterministic virtual-cycle accounting. Wall times are host-dependent
   by nature, so they are exported as Float fields and the report tool
   treats them as informational (never gated on).

   The clock is injectable so tests can drive it; the default is
   [Sys.time] (process CPU seconds) to keep lib/core free of unix. *)

type phase = Translate | Execute | Persist_io | Snapshot

let n_phases = 4
let index = function Translate -> 0 | Execute -> 1 | Persist_io -> 2 | Snapshot -> 3
let phase_name = function
  | Translate -> "translate"
  | Execute -> "execute"
  | Persist_io -> "persist_io"
  | Snapshot -> "snapshot"

let phases = [ Translate; Execute; Persist_io; Snapshot ]

type t = {
  clock : unit -> float;
  secs : float array;
  counts : int array;
}

let create ?(clock = Sys.time) () =
  { clock; secs = Array.make n_phases 0.0; counts = Array.make n_phases 0 }

let add t phase dt =
  let i = index phase in
  t.secs.(i) <- t.secs.(i) +. (if dt > 0.0 then dt else 0.0);
  t.counts.(i) <- t.counts.(i) + 1

let time t phase f =
  let t0 = t.clock () in
  Fun.protect ~finally:(fun () -> add t phase (t.clock () -. t0)) f

let seconds t phase = t.secs.(index phase)
let count t phase = t.counts.(index phase)

let to_json t =
  List.concat_map
    (fun p ->
      let i = index p in
      [
        (phase_name p ^ "_s", Metrics.Float t.secs.(i));
        (phase_name p ^ "_n", Metrics.Int t.counts.(i));
      ])
    phases

let pp ppf t =
  List.iter
    (fun p ->
      let i = index p in
      if t.counts.(i) > 0 then
        Fmt.pf ppf "%-10s %8.3fs  (%d spans)@." (phase_name p) t.secs.(i)
          t.counts.(i))
    phases
