(* Per-guest-block cycle attribution. The engine's machine charges every
   executed cycle through [Machine.charge]; with a profile attached, a
   probe mirrors each charge onto the guest block owning the current
   bundle, split by phase. Translation and recovery overhead are
   attributed separately at their charge sites, so a block's row answers
   "what did this EIP cost us" in all three senses. Cycles charged while
   no translated block owns the IP (dispatcher, interpreter, runtime
   glue) accumulate in the runtime bucket. *)

type phase = Cold | Hot

type row = {
  mutable cold_cycles : int;
  mutable hot_cycles : int;
  mutable translate_cycles : int;
  mutable recovery_cycles : int;
}

type t = {
  rows : (int, row) Hashtbl.t; (* guest entry EIP -> row *)
  mutable runtime_cycles : int;
}

let create () = { rows = Hashtbl.create 256; runtime_cycles = 0 }

let row t entry =
  match Hashtbl.find_opt t.rows entry with
  | Some r -> r
  | None ->
    let r =
      { cold_cycles = 0; hot_cycles = 0; translate_cycles = 0;
        recovery_cycles = 0 }
    in
    Hashtbl.add t.rows entry r;
    r

let note_exec t ~entry ~phase ~cycles =
  let r = row t entry in
  match phase with
  | Cold -> r.cold_cycles <- r.cold_cycles + cycles
  | Hot -> r.hot_cycles <- r.hot_cycles + cycles

let note_translate t ~entry ~cycles =
  let r = row t entry in
  r.translate_cycles <- r.translate_cycles + cycles

let note_recovery t ~entry ~cycles =
  let r = row t entry in
  r.recovery_cycles <- r.recovery_cycles + cycles

let note_runtime t ~cycles = t.runtime_cycles <- t.runtime_cycles + cycles

let exec_cycles r = r.cold_cycles + r.hot_cycles

let rows t =
  Hashtbl.fold (fun entry r acc -> (entry, r) :: acc) t.rows []
  |> List.sort (fun (_, a) (_, b) -> compare (exec_cycles b) (exec_cycles a))

let top n t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take n (rows t)

let runtime_cycles t = t.runtime_cycles

let hot_exec t =
  Hashtbl.fold (fun _ r acc -> acc + r.hot_cycles) t.rows 0

let cold_exec t =
  Hashtbl.fold (fun _ r acc -> acc + r.cold_cycles) t.rows 0

let total_exec t = hot_exec t + cold_exec t

let render ?(top = 10) ?(name_of = fun _ -> None) ?samples ppf t =
  let all = rows t in
  let total = total_exec t + runtime_cycles t in
  let pct c = if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total in
  (* Optional sample-share column: (samples-for-entry, total-samples)
     from the virtual-cycle sampler, shown next to the cycle share. *)
  let sample_pct =
    match samples with
    | Some (of_entry, total) when total > 0 ->
      Some (fun entry -> 100.0 *. float_of_int (of_entry entry) /. float_of_int total)
    | _ -> None
  in
  Fmt.pf ppf "top %d guest blocks by executed cycles (of %d exec + %d runtime):@."
    top total (runtime_cycles t);
  Fmt.pf ppf "  %-28s %12s %6s" "block" "exec" "%";
  if sample_pct <> None then Fmt.pf ppf " %6s" "smpl%";
  Fmt.pf ppf " %12s %12s %10s %10s@." "hot" "cold" "translate" "recovery";
  let shown = ref 0 in
  List.iteri
    (fun i (entry, r) ->
      if i < top then begin
        incr shown;
        let label =
          match name_of entry with
          | Some s -> s
          | None -> Printf.sprintf "0x%x" entry
        in
        Fmt.pf ppf "  %-28s %12d %5.1f%%" label (exec_cycles r)
          (pct (exec_cycles r));
        (match sample_pct with
        | Some f -> Fmt.pf ppf " %5.1f%%" (f entry)
        | None -> ());
        Fmt.pf ppf " %12d %12d %10d %10d@." r.hot_cycles r.cold_cycles
          r.translate_cycles r.recovery_cycles
      end)
    all;
  let rest = List.length all - !shown in
  if rest > 0 then
    let rest_cycles =
      List.fold_left
        (fun acc (_, r) -> acc + exec_cycles r)
        0
        (List.filteri (fun i _ -> i >= top) all)
    in
    Fmt.pf ppf "  ... %d more blocks (%d cycles)@." rest rest_cycles
