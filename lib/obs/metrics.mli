(** Machine-readable metrics snapshots.

    A snapshot is a schema name plus ordered sections of ordered
    (key, value) pairs. The same snapshot renders as stable JSON
    ([to_string], [write]), grouped human text ([pp_text]), or a flat
    counter list ([counters]) for fuzzer coverage steering.

    JSON is hand-rolled — writer plus a minimal parser used by the
    smoke validator — because the build carries no JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : ?pretty:bool -> json -> string
(** [pretty] defaults to [true] (2-space indent, trailing newline). *)

val parse : string -> (json, string) result
(** Minimal recursive-descent JSON parser. Rejects trailing garbage.
    [\uXXXX] escapes decode to UTF-8 without surrogate recombination. *)

val member : string -> json -> json option
(** [member k (Obj _)] looks up field [k]; [None] on other variants. *)

type t

val make : schema:string -> t
val section : t -> string -> (string * json) list -> unit
(** Append a named section. Order of calls is preserved in output. *)

val sections : t -> (string * (string * json) list) list

val to_json : t -> json
(** [Obj] with a leading ["schema"] field followed by one field per
    section. *)

val to_string : ?pretty:bool -> t -> string
val write : t -> out_channel -> unit

val counters : t -> (string * int) list
(** Integer fields of the ["counters"] section (empty if absent). *)

val pp_text : Format.formatter -> t -> unit
(** Grouped human rendering, used by [ia32el-run --stats]. *)
