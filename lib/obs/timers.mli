(** Host-side phase wall-timers: where *host* time goes (translate vs
    execute vs persistent-cache I/O vs snapshot), complementing the
    deterministic virtual-cycle accounting. Wall seconds are exported as
    Float fields; the report tool treats them as informational only —
    the regression gate never fires on them. *)

type phase = Translate | Execute | Persist_io | Snapshot

val phase_name : phase -> string
val phases : phase list

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Sys.time] (process CPU seconds; keeps lib/core
    unix-free). Injectable for tests. *)

val time : t -> phase -> (unit -> 'a) -> 'a
(** Run a thunk under a phase span; exceptions propagate, the span is
    still recorded ([Fun.protect]). *)

val add : t -> phase -> float -> unit
(** Record an externally measured span (seconds; negatives clamp to 0). *)

val seconds : t -> phase -> float
val count : t -> phase -> int

val to_json : t -> (string * Metrics.json) list
(** The ["host_timers"] section: [<phase>_s] Float seconds and
    [<phase>_n] Int span counts for every phase. *)

val pp : Format.formatter -> t -> unit
