(* Structured engine tracing: a fixed-capacity ring buffer of typed
   events, stamped with the engine's virtual clock. The buffer is a leaf
   data structure — producers (engine, tcache, Vos) hold a [t option] and
   emit only under [Some], so a disabled trace costs one branch and zero
   allocation per potential event. The recorded window exports as Chrome
   [trace_event] JSON (chrome://tracing, Perfetto) or pretty-prints line
   by line for [--trace-stderr]. *)

type phase = Cold | Hot

type ev =
  | Dispatch of { eip : int }
  | Trans_begin of { phase : phase; entry : int }
  | Trans_end of { phase : phase; entry : int; insns : int; cycles : int }
  | Heat_trigger of { entry : int; registered : int }
  | Chain_patch of { bundle : int; slot : int }
  | Spec_miss of { kind : string; entry : int }
  | Machine_fault of { kind : string; addr : int; bundle : int }
  | Fault_delivered of { fault : string; eip : int }
  | Recovery of { path : string; eip : int }
  | Smc_invalidation of { addr : int; victims : int }
  | Tcache_evict of { bundles : int }
  | Tcache_invalidate of { start : int; len : int }
  | Syscall_enter of { name : string }
  | Syscall_exit of { name : string; kernel_cycles : int; idle_cycles : int }
  | Degrade of { kind : string; key : int }
  | Thread_spawn of { tid : int; entry : int }
  | Thread_exit of { tid : int; code : int }
  | Thread_switch of { from_tid : int; to_tid : int }
  | Exit_program of { code : int }
  | Snapshot of { epoch : int; event_index : int }

type event = { at : int; tid : int; ev : ev }

type t = {
  buf : event array;
  cap : int;
  mutable total : int; (* events ever emitted; buffer index = total mod cap *)
  mutable clock : unit -> int;
  mutable tid_source : unit -> int; (* currently scheduled guest tid *)
  mutable echo : (event -> unit) option;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  let cap = max 1 capacity in
  {
    buf = Array.make cap { at = 0; tid = 0; ev = Dispatch { eip = 0 } };
    cap;
    total = 0;
    clock = (fun () -> 0);
    tid_source = (fun () -> 0);
    echo = None;
  }

let set_clock t f = t.clock <- f
let set_tid_source t f = t.tid_source <- f
let set_echo t f = t.echo <- Some f

let emit t ev =
  let e = { at = t.clock (); tid = t.tid_source (); ev } in
  t.buf.(t.total mod t.cap) <- e;
  t.total <- t.total + 1;
  match t.echo with Some f -> f e | None -> ()

let capacity t = t.cap
let length t = min t.total t.cap
let dropped t = max 0 (t.total - t.cap)
let absolute_index t = t.total

(* Retained events, oldest first. *)
let events t =
  let n = length t in
  let first = t.total - n in
  List.init n (fun k -> t.buf.((first + k) mod t.cap))

let phase_name = function Cold -> "cold" | Hot -> "hot"

let name = function
  | Dispatch _ -> "dispatch"
  | Trans_begin { phase = Cold; _ } -> "translate_cold_begin"
  | Trans_begin { phase = Hot; _ } -> "translate_hot_begin"
  | Trans_end { phase = Cold; _ } -> "translate_cold"
  | Trans_end { phase = Hot; _ } -> "translate_hot"
  | Heat_trigger _ -> "heat_trigger"
  | Chain_patch _ -> "chain_patch"
  | Spec_miss _ -> "spec_miss"
  | Machine_fault _ -> "machine_fault"
  | Fault_delivered _ -> "fault_delivered"
  | Recovery _ -> "recovery"
  | Smc_invalidation _ -> "smc_invalidation"
  | Tcache_evict _ -> "tcache_evict"
  | Tcache_invalidate _ -> "tcache_invalidate"
  | Syscall_enter _ -> "syscall_enter"
  | Syscall_exit _ -> "syscall"
  | Degrade _ -> "degrade"
  | Thread_spawn _ -> "thread_spawn"
  | Thread_exit _ -> "thread_exit"
  | Thread_switch _ -> "thread_switch"
  | Exit_program _ -> "exit_program"
  | Snapshot _ -> "snapshot"

(* The argument payload as (key, value) pairs; strings are tagged so the
   JSON export can quote them. *)
type arg = Anum of int | Astr of string

let args = function
  | Dispatch { eip } -> [ ("eip", Anum eip) ]
  | Trans_begin { phase; entry } ->
    [ ("phase", Astr (phase_name phase)); ("entry", Anum entry) ]
  | Trans_end { phase; entry; insns; cycles } ->
    [
      ("phase", Astr (phase_name phase));
      ("entry", Anum entry);
      ("insns", Anum insns);
      ("cycles", Anum cycles);
    ]
  | Heat_trigger { entry; registered } ->
    [ ("entry", Anum entry); ("registered", Anum registered) ]
  | Chain_patch { bundle; slot } ->
    [ ("bundle", Anum bundle); ("slot", Anum slot) ]
  | Spec_miss { kind; entry } -> [ ("kind", Astr kind); ("entry", Anum entry) ]
  | Machine_fault { kind; addr; bundle } ->
    [ ("kind", Astr kind); ("addr", Anum addr); ("bundle", Anum bundle) ]
  | Fault_delivered { fault; eip } ->
    [ ("fault", Astr fault); ("eip", Anum eip) ]
  | Recovery { path; eip } -> [ ("path", Astr path); ("eip", Anum eip) ]
  | Smc_invalidation { addr; victims } ->
    [ ("addr", Anum addr); ("victims", Anum victims) ]
  | Tcache_evict { bundles } -> [ ("bundles", Anum bundles) ]
  | Tcache_invalidate { start; len } ->
    [ ("start", Anum start); ("len", Anum len) ]
  | Syscall_enter { name } -> [ ("call", Astr name) ]
  | Syscall_exit { name; kernel_cycles; idle_cycles } ->
    [
      ("call", Astr name);
      ("kernel_cycles", Anum kernel_cycles);
      ("idle_cycles", Anum idle_cycles);
    ]
  | Degrade { kind; key } -> [ ("kind", Astr kind); ("key", Anum key) ]
  | Thread_spawn { tid; entry } ->
    [ ("tid", Anum tid); ("entry", Anum entry) ]
  | Thread_exit { tid; code } -> [ ("tid", Anum tid); ("code", Anum code) ]
  | Thread_switch { from_tid; to_tid } ->
    [ ("from", Anum from_tid); ("to", Anum to_tid) ]
  | Exit_program { code } -> [ ("code", Anum code) ]
  | Snapshot { epoch; event_index } ->
    [ ("epoch", Anum epoch); ("event_index", Anum event_index) ]

(* Keys whose numeric payload is a guest address: pretty-print in hex. *)
let hex_keys = [ "eip"; "entry"; "addr"; "key" ]

(* The emitting thread is shown only when nonzero, so single-threaded
   trace output is byte-identical to the pre-thread format. *)
let pp_event ppf { at; tid; ev } =
  if tid = 0 then Fmt.pf ppf "[%d] %s" at (name ev)
  else Fmt.pf ppf "[%d] t%d %s" at tid (name ev);
  List.iter
    (fun (k, v) ->
      match v with
      | Astr s -> Fmt.pf ppf " %s=%s" k s
      | Anum n when List.mem k hex_keys -> Fmt.pf ppf " %s=0x%x" k n
      | Anum n -> Fmt.pf ppf " %s=%d" k n)
    (args ev)

(* ---- Chrome trace_event export ---------------------------------------- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Events with an intrinsic span render as complete ("X") trace events;
   everything else is an instant ("i"). Timestamps are virtual cycles,
   reported in the trace_event microsecond field. *)
let span = function
  | Trans_end { cycles; _ } -> Some cycles
  | Syscall_exit { kernel_cycles; idle_cycles; _ } ->
    Some (kernel_cycles + idle_cycles)
  | _ -> None

let to_chrome t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let metadata name tid value =
    if not !first then Buffer.add_string buf ",\n" else Buffer.add_char buf '\n';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
         name tid);
    Buffer.add_string buf "\"args\":{\"name\":\"";
    json_escape buf value;
    Buffer.add_string buf "\"}}"
  in
  let evs = events t in
  (* Metadata records first: viewers apply process/thread names to every
     later event regardless of position, but leading keeps diffs tidy. *)
  metadata "process_name" 1 "ia32el guest";
  let tids =
    List.sort_uniq compare (List.map (fun { tid; _ } -> tid) evs)
  in
  List.iter
    (fun tid ->
      let label = if tid = 0 then "guest main" else Printf.sprintf "guest thread %d" tid in
      metadata "thread_name" (tid + 1) label)
    tids;
  List.iter
    (fun { at; tid; ev } ->
      if not !first then Buffer.add_string buf ",\n" else Buffer.add_char buf '\n';
      first := false;
      Buffer.add_string buf "{\"name\":\"";
      json_escape buf (name ev);
      (* chrome tids are 1-based; guest tid 0 maps to trace tid 1 *)
      Buffer.add_string buf (Printf.sprintf "\",\"pid\":1,\"tid\":%d," (tid + 1));
      (match span ev with
      | Some dur ->
        Buffer.add_string buf
          (Printf.sprintf "\"ph\":\"X\",\"ts\":%d,\"dur\":%d,"
             (max 0 (at - dur)) dur)
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "\"ph\":\"i\",\"s\":\"t\",\"ts\":%d," at));
      Buffer.add_string buf "\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          json_escape buf k;
          Buffer.add_string buf "\":";
          match v with
          | Anum n -> Buffer.add_string buf (string_of_int n)
          | Astr s ->
            Buffer.add_char buf '"';
            json_escape buf s;
            Buffer.add_char buf '"')
        (args ev);
      Buffer.add_string buf "}}")
    evs;
  Buffer.add_string buf "\n]\n";
  buf

let write_chrome t oc = Buffer.output_buffer oc (to_chrome t)
