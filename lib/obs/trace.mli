(** Structured engine tracing.

    A fixed-capacity ring buffer of typed events stamped with the
    engine's virtual cycle clock. Producers hold a [t option] and emit
    only under [Some], so disabled tracing costs a single branch and no
    allocation. The retained window exports as Chrome [trace_event]
    JSON (loadable in chrome://tracing or Perfetto). *)

type phase = Cold | Hot

type ev =
  | Dispatch of { eip : int }
  | Trans_begin of { phase : phase; entry : int }
  | Trans_end of { phase : phase; entry : int; insns : int; cycles : int }
  | Heat_trigger of { entry : int; registered : int }
  | Chain_patch of { bundle : int; slot : int }
  | Spec_miss of { kind : string; entry : int }
      (** [kind] is one of ["tos"], ["park"], ["tag"], ["mode"], ["sse"]. *)
  | Machine_fault of { kind : string; addr : int; bundle : int }
  | Fault_delivered of { fault : string; eip : int }
  | Recovery of { path : string; eip : int }
  | Smc_invalidation of { addr : int; victims : int }
  | Tcache_evict of { bundles : int }
  | Tcache_invalidate of { start : int; len : int }
  | Syscall_enter of { name : string }
  | Syscall_exit of { name : string; kernel_cycles : int; idle_cycles : int }
  | Degrade of { kind : string; key : int }
  | Thread_spawn of { tid : int; entry : int }
  | Thread_exit of { tid : int; code : int }
  | Thread_switch of { from_tid : int; to_tid : int }
  | Exit_program of { code : int }
  | Snapshot of { epoch : int; event_index : int }
      (** a snapshot epoch was opened; [event_index] is the absolute
          trace-stream index of this event ({!absolute_index} at emit
          time) — the time-travel anchor tying traced events to the
          epoch that can rewind to just before them. *)

type event = { at : int; tid : int; ev : ev }
(** [tid] is the guest thread scheduled when the event was emitted (0 for
    single-threaded programs and producers outside the engine). *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** [create ()] makes a trace with the default 65536-event window. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the virtual clock used to stamp [event.at]. The engine sets
    this to its own [now]; secondary producers (tcache, Vos) inherit the
    stamp through the shared trace value. *)

val set_tid_source : t -> (unit -> int) -> unit
(** Install the source of the currently scheduled guest tid used to stamp
    [event.tid]. Defaults to a constant 0. *)

val set_echo : t -> (event -> unit) -> unit
(** Install a hook called on every emitted event (used by
    [--trace-stderr] for live pretty-printing). *)

val emit : t -> ev -> unit

val capacity : t -> int
val length : t -> int
(** Number of events currently retained (≤ capacity). *)

val dropped : t -> int
(** Number of events that fell out of the ring window. *)

val absolute_index : t -> int
(** Stream position: total events emitted so far ([length] + [dropped]).
    The next emitted event gets this index. Snapshot layers record it to
    map any traced event back to the nearest earlier snapshot epoch. *)

val events : t -> event list
(** Retained events, oldest first. *)

val name : ev -> string
val pp_event : event Fmt.t

val to_chrome : t -> Buffer.t
(** Render the retained window as a Chrome [trace_event] JSON array.
    Timestamps are virtual cycles placed in the microsecond field;
    translation and syscall events become complete ("X") spans, the rest
    instants. Leading metadata ("M") records name the guest process and
    every guest thread present in the window, so multithreaded traces
    show "guest thread N" lanes instead of bare tids. *)

val write_chrome : t -> out_channel -> unit
