(* Machine-readable metrics snapshots. A snapshot is a named schema plus
   an ordered list of sections, each an ordered list of (key, json)
   pairs — stable field order keeps emitted JSON diffable across runs.
   The same snapshot renders three ways: JSON export ([to_string],
   [write]), grouped human text ([pp_text], used by `ia32el-run --stats`),
   and the flat counter list ([counters]) that steers fuzzer coverage.

   JSON is hand-rolled (writer and a minimal parser) because the build
   environment deliberately carries no JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* ---- writer ----------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_to_json f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    Printf.sprintf "%.17g" f

let rec write_json buf ~indent ~level j =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_json f)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        write_json buf ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf (if indent then "\": " else "\":");
        write_json buf ~indent ~level:(level + 1) v)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let json_to_string ?(pretty = true) j =
  let buf = Buffer.create 1024 in
  write_json buf ~indent:pretty ~level:0 j;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- minimal recursive-descent parser --------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* Decode the code point as UTF-8. Surrogate pairs are not
             recombined — sufficient for validating our own output,
             which never emits them. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
        | _ -> fail "bad escape");
        loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e'
       || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ---- snapshots -------------------------------------------------------- *)

type t = {
  schema : string;
  mutable sections : (string * (string * json) list) list; (* reversed *)
}

let make ~schema = { schema; sections = [] }

let section t name fields = t.sections <- (name, fields) :: t.sections

let sections t = List.rev t.sections

let to_json t =
  Obj
    (("schema", Str t.schema)
    :: List.map (fun (name, fields) -> (name, Obj fields)) (sections t))

let to_string ?pretty t = json_to_string ?pretty (to_json t)

let write t oc = output_string oc (to_string t)

let counters t =
  match List.assoc_opt "counters" (sections t) with
  | None -> []
  | Some fields ->
    List.filter_map
      (fun (k, v) -> match v with Int n -> Some (k, n) | _ -> None)
      fields

let pp_value ppf = function
  | Null -> Fmt.string ppf "-"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.pf ppf "%.2f" f
  | Str s -> Fmt.string ppf s
  | (List _ | Obj _) as j -> Fmt.string ppf (json_to_string ~pretty:false j)

let pp_text ppf t =
  Fmt.pf ppf "schema: %s@." t.schema;
  List.iter
    (fun (name, fields) ->
      Fmt.pf ppf "%s:@." name;
      List.iter
        (fun (k, v) -> Fmt.pf ppf "  %-24s %a@." k pp_value v)
        fields)
    (sections t)
