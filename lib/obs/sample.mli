(** Virtual-cycle sampling profiler.

    Samples are triggered by the engine's deterministic virtual clock —
    every [interval] guest cycles, observed at commit points — never by
    host time, so the sample stream and the folded flamegraph export are
    byte-identical across runs of the same image and configuration.

    Attachment is recording-only: the engine polls [due] (one compare)
    and calls [record] only when a boundary has been crossed; nothing
    here charges cycles or touches guest state. *)

type t

val create : interval:int -> labels:(string * int) list -> t
(** [create ~interval ~labels] samples every [interval] (> 0) virtual
    cycles, attributing EIPs to the greatest label at or below them
    (within 64 KiB; otherwise an anonymous 4 KiB-page bucket). [labels]
    is [Asm.image.labels]-shaped: name, address. *)

val due : t -> now:int -> bool
(** One integer compare — the only work on the hot path. *)

val record :
  t -> now:int -> tid:int -> eip:int -> entry:int -> phase:string ->
  degraded:bool -> unit
(** Fold a sample into the "tN;symbol;phase[;degraded]" stack bucket and
    the per-block-entry table, weighted by the number of interval
    boundaries crossed since the previous poll. Call only after [due]
    returned true (calling otherwise is a harmless no-op). *)

val interval : t -> int
val samples : t -> int
val bucket_count : t -> int

val entry_samples : t -> int -> int
(** Samples attributed to a given block/trace entry EIP — feeds the
    sample-share column of the --profile table. *)

val symbol_of : t -> int -> string
(** The symbol an EIP attributes to (exposed for tests). *)

val folded : t -> string
(** Collapsed-stack ("folded") flamegraph lines, sorted by stack key —
    pipe into flamegraph.pl or load into speedscope. Deterministic. *)

val write_folded : t -> string -> unit

val top : int -> t -> (string * int) list
(** Top-n buckets by sample count (ties broken by key). *)

val render_top : ?top_n:int -> Format.formatter -> t -> unit
(** Human-readable hot-region table with per-bucket sample share. *)

val to_json : t -> Metrics.json
(** The ["sample"] section of ia32el-metrics/2: interval, total samples,
    and every bucket with its count. *)
