(* Virtual-cycle sampling profiler.

   Driven by the engine's deterministic clock: the engine polls [due]
   from its charge probe / commit points and calls [record] whenever the
   clock has crossed the next sampling boundary. Because the trigger is
   virtual cycles — not host time — the sample stream is a pure function
   of the run, so the folded flamegraph output is byte-identical across
   runs of the same image and config.

   Aggregation is by guest symbol: each sample folds into a
   "tN;symbol;phase[;degraded]" stack key (two frames: thread, then
   symbol annotated with translation phase), which is exactly the
   collapsed-stack format flamegraph.pl / speedscope consume. A second
   table keyed by block entry EIP feeds the per-entry sample-share
   column in the --profile top-N table. *)

type t = {
  interval : int;
  labels : (int * string) array;  (* sorted by address, ascending *)
  mutable next : int;  (* clock value of the next sample boundary *)
  mutable taken : int;
  buckets : (string, int ref) Hashtbl.t;
  entries : (int, int ref) Hashtbl.t;
}

let create ~interval ~labels =
  if interval <= 0 then invalid_arg "Sample.create: interval must be > 0";
  let labels =
    let a = Array.of_list (List.map (fun (name, addr) -> (addr, name)) labels) in
    Array.sort (fun (a, _) (b, _) -> compare a b) a;
    a
  in
  {
    interval;
    labels;
    next = interval;
    taken = 0;
    buckets = Hashtbl.create 64;
    entries = Hashtbl.create 64;
  }

let interval t = t.interval
let samples t = t.taken
let bucket_count t = Hashtbl.length t.buckets

let due t ~now = now >= t.next

(* Greatest label at or below [eip], if it is within 64 KiB — same
   attribution window the --profile renderer uses. Unlabelled addresses
   aggregate by 4 KiB page so stripped regions still bucket sanely. *)
let symbol_of t eip =
  let n = Array.length t.labels in
  if n = 0 then Printf.sprintf "0x%x" (eip land lnot 0xfff)
  else begin
    let lo = ref 0 and hi = ref n in
    (* invariant: labels below !lo are <= eip, labels at/after !hi are > eip *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let addr, _ = t.labels.(mid) in
      if addr <= eip then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then Printf.sprintf "0x%x" (eip land lnot 0xfff)
    else
      let addr, name = t.labels.(!lo - 1) in
      if eip - addr < 0x10000 then name
      else Printf.sprintf "0x%x" (eip land lnot 0xfff)
  end

let bump tbl key w =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + w
  | None -> Hashtbl.add tbl key (ref w)

let record t ~now ~tid ~eip ~entry ~phase ~degraded =
  (* Weight by the number of boundaries crossed since the last poll, so
     a long charge (e.g. a translation burst) counts proportionally. *)
  let w = ref 0 in
  while t.next <= now do
    t.next <- t.next + t.interval;
    incr w
  done;
  if !w > 0 then begin
    t.taken <- t.taken + !w;
    let key =
      Printf.sprintf "t%d;%s;%s%s" tid (symbol_of t eip) phase
        (if degraded then ";degraded" else "")
    in
    bump t.buckets key !w;
    bump t.entries entry !w
  end

let entry_samples t entry =
  match Hashtbl.find_opt t.entries entry with Some r -> !r | None -> 0

let sorted_buckets t =
  let rows = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.buckets [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

(* Collapsed-stack output: "stack;frames count" lines, sorted by stack
   key so the file is byte-identical across runs. *)
let folded t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, n) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k n))
    (sorted_buckets t);
  Buffer.contents b

let write_folded t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (folded t))

let top n t =
  let rows = sorted_buckets t in
  let rows =
    List.sort
      (fun (ka, na) (kb, nb) ->
        if na <> nb then compare nb na else String.compare ka kb)
      rows
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take n rows

let render_top ?(top_n = 10) ppf t =
  if t.taken = 0 then Fmt.pf ppf "no samples taken@."
  else begin
    Fmt.pf ppf "%d samples every %d cycles (%d buckets)@." t.taken t.interval
      (bucket_count t);
    Fmt.pf ppf "%8s  %6s  %s@." "samples" "share" "region";
    List.iter
      (fun (k, n) ->
        Fmt.pf ppf "%8d  %5.1f%%  %s@." n
          (100.0 *. float_of_int n /. float_of_int t.taken)
          k)
      (top top_n t)
  end

let to_json t =
  Metrics.Obj
    [
      ("interval", Metrics.Int t.interval);
      ("samples", Metrics.Int t.taken);
      ( "buckets",
        Metrics.Obj
          (List.map (fun (k, n) -> (k, Metrics.Int n)) (sorted_buckets t)) );
    ]
