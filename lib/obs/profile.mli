(** Per-guest-block cycle attribution.

    With a profile attached, the engine mirrors every cycle charged by
    the machine onto the guest block owning the current bundle, split by
    translation phase; translation and recovery overhead are recorded
    separately at their charge sites. Cycles with no owning block
    (dispatcher, interpreter, runtime glue) go to the runtime bucket. *)

type phase = Cold | Hot

type row = {
  mutable cold_cycles : int;
  mutable hot_cycles : int;
  mutable translate_cycles : int;
  mutable recovery_cycles : int;
}

type t

val create : unit -> t

val note_exec : t -> entry:int -> phase:phase -> cycles:int -> unit
val note_translate : t -> entry:int -> cycles:int -> unit
val note_recovery : t -> entry:int -> cycles:int -> unit
val note_runtime : t -> cycles:int -> unit

val exec_cycles : row -> int

val rows : t -> (int * row) list
(** All rows, sorted by executed cycles, descending. *)

val top : int -> t -> (int * row) list

val runtime_cycles : t -> int
val hot_exec : t -> int
val cold_exec : t -> int
val total_exec : t -> int

val render :
  ?top:int ->
  ?name_of:(int -> string option) ->
  ?samples:(int -> int) * int ->
  Format.formatter ->
  t ->
  unit
(** Render a top-N hot-spot table. [name_of] maps a guest entry EIP to a
    symbolic label (e.g. nearest assembler label). [samples] is
    [(samples_of_entry, total_samples)] from an attached virtual-cycle
    sampler; when present a sample-share column appears next to the
    cycle share. *)
