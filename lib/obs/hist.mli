(** Log-bucketed (HDR-style) histograms over non-negative integers.

    Values below 16 land in exact buckets; above that each power-of-two
    octave splits into 16 sub-buckets, bounding relative error by ~6% at
    any magnitude. Recording is allocation-free and deterministic;
    percentiles report the lower bound of the covering bucket. Negative
    values clamp to 0. *)

type t

val create : unit -> t
val clear : t -> unit
val record : t -> int -> unit

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value (0 when empty). *)

val max_value : t -> int
(** Largest recorded value, exact (0 when empty). *)

val percentile : t -> float -> int
(** [percentile t q] for 0 < q <= 1: the lower bound of the bucket
    holding the ceil(q*count)-th smallest sample. 0 when empty. *)

val bucket_index : int -> int
(** Bucket covering a value — exposed for the unit tests. *)

val bucket_lo : int -> int
(** Smallest value a bucket index covers; [bucket_lo (bucket_index v)]
    is <= [v] with relative error bounded by 1/16. *)

val to_json : t -> Metrics.json
(** [Obj] with count/sum/min/max/p50/p90/p99 plus a sparse ["buckets"]
    list of [lo, count] pairs, ascending. *)

val pp : Format.formatter -> t -> unit

(** {2 The engine's histogram set}

    The six latency/size distributions the metrics schema carries
    (section ["hist"] of ia32el-metrics/2). All are recording-only:
    attaching the set never charges cycles or perturbs observables.
    [syscall_latency], [futex_wait], [trace_length], [translate_block]
    and [tcache_probe_depth] are measured in deterministic virtual units;
    [snapshot_cost] is host microseconds (informational, like the phase
    wall-timers). *)

type set = {
  syscall_latency : t;
  futex_wait : t;
  trace_length : t;
  tcache_probe_depth : t;
  translate_block : t;
  snapshot_cost : t;
}

val create_set : unit -> set

val set_fields : set -> (string * t) list
(** Stable (name, histogram) pairs in schema order. *)

val set_to_json : set -> (string * Metrics.json) list
