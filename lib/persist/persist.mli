(** Crash-safe persistent translation cache (DESIGN.md S13).

    Serializes the translated-code store — cold blocks, hot traces,
    their reconstruction maps and the discover/heat metadata needed to
    rebuild translation-cache state — to a cache file keyed by
    (guest-image hash, config fingerprint, format version), so a second
    run of the same guest starts hot, and an AOT sweep can pre-translate
    a whole image.

    The cache only ever saves {e host} work. A run with a warm cache is
    bit-identical in every observable — guest output, cycle counts,
    [Account] totals, metrics — to the same run translating everything
    live: installs replay the recorded accounting delta, profile-arena
    slots are pinned at their recorded (dcache-inert) addresses, and
    block ids / bundle indices are remapped structurally at install.

    Robustness ladder: every load problem — bad magic, corrupt header,
    version or fingerprint mismatch, truncation, per-entry checksum
    failure — drops the affected entries with a structured
    {!Ia32el.Bt_error.t} diagnostic and degrades to live translation.
    Install-time validation (source-byte span, entry TOS, phase flags,
    hot-profile seeds, arena-pin success) rejects any entry the live
    translator would not reproduce; a damaged or stale cache can slow a
    run, never change it. *)

val format_version : int

(** {1 Checksums and fingerprints} *)

val crc32 : ?init:int -> string -> int
(** CRC-32 (IEEE, reflected) of a string; [init] chains computations. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash. *)

val config_fingerprint : Ia32el.Config.t -> int64
(** Fingerprint of every translation-relevant configuration switch plus
    the cache format version: any config drift invalidates the cache. *)

val image_hash : Ia32.Asm.image -> int64
(** Hash of the guest image's entry point, load addresses and code/data
    bytes. *)

(** {1 The store} *)

type store
(** In-memory translated-code store: recorded translations keyed by
    (phase, guest entry, occurrence). The occurrence index counts
    successful translations of the same entry within one run, so
    flush/retranslate cycles replay correctly. *)

val create_store : image_hash:int64 -> config_fp:int64 -> store
val entry_count : store -> int

val load : path:string -> image_hash:int64 -> config_fp:int64 -> store * Ia32el.Bt_error.t list
(** Load a cache file. Never raises: any corruption, truncation or
    staleness is reported as diagnostics and the affected entries (or
    the whole file) are dropped — the returned store holds exactly the
    entries that verified. A missing file is an empty store with no
    diagnostics. *)

val save : store -> path:string -> Ia32el.Bt_error.t list
(** Atomically save (write to a temp file, then rename), guarded by a
    single-writer [<path>.lock] lockfile. Never raises; a held lock or
    an I/O failure is reported as a diagnostic and the existing file is
    left untouched. *)

(** {1 Sessions} *)

type stats = {
  mutable hits : int;  (** translations installed from the store *)
  mutable misses : int;  (** no recorded entry; translated live *)
  mutable rejects : int;
      (** recorded entry failed validation; translated live *)
  mutable recorded : int;  (** live translations recorded into the store *)
  mutable eliminated_cold_cycles : int;
      (** virtual cold-translation cycles whose host work was skipped *)
  mutable eliminated_hot_cycles : int;
}

type session

val attach : ?verify:bool -> ?readonly:bool -> store -> Ia32el.Engine.t -> session
(** Install the store as the engine's translate filter. [verify]
    (default true) enables the semantic validations (source span,
    TOS/flag, hot-profile seeds); the structural ones (arena pins,
    branch-target bounds, id consistency) are always enforced.
    [readonly] (default false) disables recording live translations
    into the store. *)

val stats : session -> stats
val store_of : session -> store

val pp_stats : Format.formatter -> stats -> unit

(** {1 AOT compilation} *)

val sweep : session -> roots:int list -> lo:int -> hi:int -> int
(** Whole-image AOT sweep: drive cold translation over every address
    statically reachable from [roots] (direct branches, call targets and
    fall-throughs) within [\[lo, hi)], recording each block into the
    session's store. Returns the number of blocks translated. The
    session's engine is a translation vehicle only — its machine never
    runs. *)
