(* Crash-safe persistent translation cache (DESIGN.md S13).

   The invariant everything here serves: a cache can only ever save host
   work. Installing a recorded translation must be indistinguishable —
   observables, cycle counts, Account totals — from running the live
   translator at the same request, so a warm run is bit-identical to a
   cold one and a damaged cache degrades to retranslation, never to
   wrong code or a crash. *)

module M = Ipf.Machine
module I = Ipf.Insn
module E = Ia32el.Engine
module B = Ia32el.Block
module A = Ia32el.Account
module Err = Ia32el.Bt_error

let format_version = 1

(* ---- checksums and fingerprints ---------------------------------------- *)

(* CRC-32 (IEEE, reflected), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) s =
  let tbl = Lazy.force crc_table in
  let c = ref (init lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h prime)
    s;
  !h

let config_fingerprint (config : Ia32el.Config.t) =
  (* Config.t is pure data; Marshal gives a stable byte image of every
     switch. The format version is folded in so a format bump alone
     retires old caches. *)
  fnv1a64
    (Marshal.to_string config [] ^ Printf.sprintf "|tcache-format-%d" format_version)

let image_hash (img : Ia32.Asm.image) =
  let b = Buffer.create (String.length img.Ia32.Asm.code + 64) in
  Buffer.add_string b (Printf.sprintf "e%x|c%x|d%x|s%x|" img.Ia32.Asm.entry
       img.Ia32.Asm.code_base img.Ia32.Asm.data_base img.Ia32.Asm.stack_top);
  Buffer.add_string b img.Ia32.Asm.code;
  Buffer.add_char b '|';
  Buffer.add_string b img.Ia32.Asm.data;
  fnv1a64 (Buffer.contents b)

(* ---- store -------------------------------------------------------------- *)

(* One recorded translation. Everything Marshal-ed here is pure data
   (ints, strings, arrays, hashtables of the above) — no closures. *)
type rentry = {
  r_phase : int; (* 0 = cold, 1 = hot *)
  r_entry : int;
  r_occ : int; (* k-th successful translation of (phase, entry) this run *)
  r_tos : int; (* x87 TOS the translation assumed at entry *)
  r_flag : bool; (* stage-2 marker (cold) / avoidance marker (hot) *)
  r_use : int; (* hot-profile seeds consulted by trace selection *)
  r_taken : int;
  r_span : (int * string) list; (* mapped source-byte chunks, [entry,code_end) *)
  r_prots : (int * int) list; (* page -> encoded protection, incl. next page *)
  r_block : B.t; (* deep copy taken at translation time, pre-chaining *)
  r_bundles : Ipf.Bundle.t array; (* ditto; length r_block.tlen *)
  r_acct : A.t; (* Account delta the live translation charged *)
}

type key = int * int * int (* phase, entry, occurrence *)

type store = {
  st_image : int64;
  st_config : int64;
  st_tbl : (key, rentry) Hashtbl.t;
}

let create_store ~image_hash ~config_fp =
  { st_image = image_hash; st_config = config_fp; st_tbl = Hashtbl.create 64 }

let entry_count st = Hashtbl.length st.st_tbl

(* ---- source span capture / comparison ----------------------------------- *)

let page_bits = Ia32.Memory.page_bits
let page_size = 1 lsl page_bits

let prot_code = function
  | None -> -1
  | Some p ->
    (if p.Ia32.Memory.read then 4 else 0)
    + (if p.Ia32.Memory.write then 2 else 0)
    + if p.Ia32.Memory.exec then 1 else 0

(* Mapped byte chunks plus per-page protections over [lo, hi), and the
   protection of the page right after — a page mapped (or protected
   differently) since recording could change what the live translator
   would decode, so it must fail validation. *)
let span mem ~lo ~hi =
  let hi = max hi (lo + 1) in
  let first = lo lsr page_bits and last = (hi - 1) lsr page_bits in
  let chunks = ref [] and prots = ref [] in
  for p = first to last do
    let base = p lsl page_bits in
    let prot = Ia32.Memory.prot_of mem base in
    prots := (p, prot_code prot) :: !prots;
    match prot with
    | Some _ ->
      let clo = max lo base and chi = min hi (base + page_size) in
      chunks := (clo, Ia32.Memory.dump_bytes mem clo (chi - clo)) :: !chunks
    | None -> ()
  done;
  prots := (last + 1, prot_code (Ia32.Memory.prot_of mem ((last + 1) lsl page_bits))) :: !prots;
  (List.rev !chunks, List.rev !prots)

let span_matches mem ~chunks ~prots =
  List.for_all
    (fun (p, code) -> prot_code (Ia32.Memory.prot_of mem (p lsl page_bits)) = code)
    prots
  && List.for_all
       (fun (addr, bytes) ->
         match Ia32.Memory.dump_bytes mem addr (String.length bytes) with
         | cur -> String.equal cur bytes
         | exception _ -> false)
       chunks

(* ---- deep copies --------------------------------------------------------- *)

(* Chaining and invalidation patch tcache bundles in place, so both the
   recorded copy and every install need bundles of their own. Slot
   rewriting below allocates fresh Insn records anyway; stops need an
   explicit copy. *)
let copy_bundle (b : Ipf.Bundle.t) =
  {
    b with
    Ipf.Bundle.slots = Array.copy b.Ipf.Bundle.slots;
    stops = Array.copy b.Ipf.Bundle.stops;
  }

(* Commit maps and fp snapshots are written once at translation and only
   read afterwards, so the element copies can stay shared; the arrays and
   the recovery table get fresh spines because the mutable block fields
   (tstart, live, misalign_stage) travel with the record. *)
let copy_block (b : B.t) =
  {
    b with
    B.insns = Array.copy b.B.insns;
    sse_entry = Array.copy b.B.sse_entry;
    fp_recovery = Hashtbl.copy b.B.fp_recovery;
    commit_maps = Array.copy b.B.commit_maps;
    bundle_commit = Array.copy b.B.bundle_commit;
  }

(* ---- file format ---------------------------------------------------------

   offset 0  : 16-byte magic "IA32EL-TCACHE/1\000"
   offset 16 : format version   (BE32)
   offset 20 : image hash       (BE64)
   offset 28 : config fingerprint (BE64)
   offset 36 : CRC-32 of bytes 16..35 (BE32)
   then entry frames:  'E' | payload length (BE32) | payload | CRC-32 (BE32)
   then one trailer:   'T' | payload length (BE32) | payload | CRC-32 (BE32)
   where the trailer payload marshals (entry count, running CRC of all
   entry-frame CRC words) — so truncation after any whole frame is still
   detected. Fixed header offsets let fault injection build precise
   stale-fingerprint (valid CRC, wrong key) test files. *)

let magic = "IA32EL-TCACHE/1\000"

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.to_string b

let be64 (n : int64) =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set_uint8 b i
      (Int64.to_int (Int64.shift_right_logical n ((7 - i) * 8)) land 0xFF)
  done;
  Bytes.to_string b

let rd32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let rd64 s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let diag ?detail what = Err.make ~component:"persist" ?detail what

let header_bytes st =
  be32 format_version ^ be64 st.st_image ^ be64 st.st_config

let frame tag payload =
  String.make 1 tag ^ be32 (String.length payload) ^ payload
  ^ be32 (crc32 payload)

(* Bound on a single entry frame: anything bigger is treated as
   corruption rather than honored (a flipped length byte must not make
   the loader allocate gigabytes). *)
let max_frame = 1 lsl 26

let save st ~path =
  let lock = path ^ ".lock" in
  match open_out_gen [ Open_wronly; Open_creat; Open_excl ] 0o644 lock with
  | exception Sys_error msg ->
    [ diag ~detail:msg "cache lockfile held: concurrent writer, not saving" ]
  | lock_oc ->
    close_out_noerr lock_oc;
    let release () = (try Sys.remove lock with Sys_error _ -> ()) in
    let tmp = path ^ ".tmp" in
    let result =
      match open_out_bin tmp with
      | exception Sys_error msg -> [ diag ~detail:msg "cache io error: open" ]
      | oc -> (
        match
          output_string oc magic;
          let hdr = header_bytes st in
          output_string oc hdr;
          output_string oc (be32 (crc32 hdr));
          let crc_acc = ref 0 in
          let entries =
            Hashtbl.fold (fun _ r acc -> r :: acc) st.st_tbl []
            |> List.sort (fun a b ->
                   compare (a.r_phase, a.r_entry, a.r_occ)
                     (b.r_phase, b.r_entry, b.r_occ))
          in
          List.iter
            (fun r ->
              let payload = Marshal.to_string r [] in
              crc_acc := crc32 ~init:!crc_acc (be32 (crc32 payload));
              output_string oc (frame 'E' payload))
            entries;
          output_string oc
            (frame 'T' (Marshal.to_string (List.length entries, !crc_acc) []));
          close_out oc;
          Sys.rename tmp path
        with
        | () -> []
        | exception Sys_error msg ->
          close_out_noerr oc;
          (try Sys.remove tmp with Sys_error _ -> ());
          [ diag ~detail:msg "cache io error: write" ])
    in
    release ();
    result

(* Read exactly [n] bytes, or None at a short read. *)
let really_read ic n =
  match really_input_string ic n with
  | s -> Some s
  | exception End_of_file -> None

let load ~path ~image_hash ~config_fp =
  let fresh () = create_store ~image_hash ~config_fp in
  if not (Sys.file_exists path) then (fresh (), [])
  else
    match open_in_bin path with
    | exception Sys_error msg ->
      (fresh (), [ diag ~detail:msg "cache io error: open" ])
    | ic ->
      let st = fresh () in
      let diags = ref [] in
      let push d = diags := d :: !diags in
      let crc_acc = ref 0 in
      let n_entries = ref 0 in
      (* header: all four failure modes before any Marshal runs *)
      let header_ok =
        match really_read ic (String.length magic + 24) with
        | None ->
          push (diag "cache truncated: incomplete header");
          false
        | Some h ->
          let m = String.sub h 0 (String.length magic) in
          let body = String.sub h (String.length magic) 20 in
          let stored_crc = rd32 h (String.length magic + 20) in
          if not (String.equal m magic) then begin
            push (diag ~detail:(String.escaped m) "cache magic mismatch");
            false
          end
          else if crc32 body <> stored_crc then begin
            push (diag "cache header checksum mismatch");
            false
          end
          else begin
            let ver = rd32 body 0 in
            let img = rd64 body 4 in
            let cfg = rd64 body 12 in
            if ver <> format_version then begin
              push
                (diag
                   ~detail:(Printf.sprintf "file %d, build %d" ver format_version)
                   "cache format version mismatch");
              false
            end
            else if img <> image_hash then begin
              push (diag "stale cache: guest image hash mismatch");
              false
            end
            else if cfg <> config_fp then begin
              push (diag "stale cache: config fingerprint mismatch");
              false
            end
            else true
          end
      in
      if header_ok then begin
        (* entry frames until the trailer; CRC verified before Marshal *)
        let rec frames () =
          match really_read ic 5 with
          | None -> push (diag "cache truncated: missing trailer")
          | Some fh -> (
            let tag = fh.[0] in
            let len = rd32 fh 1 in
            if len < 0 || len > max_frame then
              push
                (diag
                   ~detail:(Printf.sprintf "tag %C length %d" tag len)
                   "cache truncated: implausible frame length")
            else
              match really_read ic (len + 4) with
              | None -> push (diag "cache truncated: incomplete frame")
              | Some body -> (
                let payload = String.sub body 0 len in
                let stored = rd32 body len in
                let computed = crc32 payload in
                match tag with
                | 'E' ->
                  if computed <> stored then begin
                    push
                      (diag
                         ~detail:(Printf.sprintf "entry index %d" !n_entries)
                         "cache entry checksum mismatch: entry dropped");
                    (* the frame boundary itself was consistent, so keep
                       scanning subsequent entries *)
                    incr n_entries;
                    frames ()
                  end
                  else begin
                    crc_acc := crc32 ~init:!crc_acc (be32 stored);
                    (match (Marshal.from_string payload 0 : rentry) with
                    | r ->
                      Hashtbl.replace st.st_tbl (r.r_phase, r.r_entry, r.r_occ) r
                    | exception _ ->
                      push
                        (diag
                           ~detail:(Printf.sprintf "entry index %d" !n_entries)
                           "cache entry unreadable: entry dropped"));
                    incr n_entries;
                    frames ()
                  end
                | 'T' ->
                  if computed <> stored then
                    push (diag "cache trailer checksum mismatch")
                  else (
                    match (Marshal.from_string payload 0 : int * int) with
                    | count, acc ->
                      if count <> !n_entries || acc <> !crc_acc then
                        push
                          (diag
                             ~detail:
                               (Printf.sprintf "trailer %d/%#x, file %d/%#x"
                                  count acc !n_entries !crc_acc)
                             "cache trailer mismatch: entries missing or damaged")
                    | exception _ -> push (diag "cache trailer unreadable"))
                | t ->
                  push
                    (diag ~detail:(Printf.sprintf "%C" t)
                       "cache truncated: unknown frame tag")))
        in
        frames ()
      end;
      close_in_noerr ic;
      (* a stale or unreadable header invalidates everything: entries were
         never read, the store stays empty and keyed to the current run *)
      (st, List.rev !diags)

(* ---- session ------------------------------------------------------------- *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable rejects : int;
  mutable recorded : int;
  mutable eliminated_cold_cycles : int;
  mutable eliminated_hot_cycles : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "tcache: %d hits, %d misses, %d rejects, %d recorded, %d cold + %d hot translation cycles eliminated"
    s.hits s.misses s.rejects s.recorded s.eliminated_cold_cycles
    s.eliminated_hot_cycles

type session = {
  se_store : store;
  se_eng : E.t;
  se_verify : bool;
  se_readonly : bool;
  se_occ : (int * int, int) Hashtbl.t; (* (phase, entry) -> next occurrence *)
  se_stats : stats;
}

let stats se = se.se_stats
let store_of se = se.se_store

let phase_code = function Obs.Trace.Cold -> 0 | Obs.Trace.Hot -> 1

(* The hot-profile seeds trace selection starts from, recomputed exactly
   as the engine's profile closures would (Engine.t is an open record).
   Interior profile reads follow deterministically from these seeds plus
   the source span in a matched run; a mismatched run virtually always
   diverges here first. *)
let profile_seeds (eng : E.t) entry =
  let hc = eng.E.config.Ia32el.Config.enable_hot_counters in
  let m = eng.E.machine in
  let use =
    match B.find_entry eng.E.cache entry with
    | Some b ->
      if hc then m.Ipf.Machine.hotc.(Ipf.Machine.counter_slot entry)
      else Ia32.Memory.read32 eng.E.mem b.B.ctr_addr
    | None -> (
      match Hashtbl.find_opt eng.E.if_counts entry with
      | Some r -> !r
      | None -> 0)
  in
  let taken =
    match B.find_entry eng.E.cache entry with
    | Some b ->
      if hc then m.Ipf.Machine.edgec.(Ipf.Machine.counter_slot entry)
      else Ia32.Memory.read32 eng.E.mem b.B.edge_addr
    | None -> (
      match Hashtbl.find_opt eng.E.if_taken entry with
      | Some r -> !r
      | None -> 0)
  in
  (use, taken)

(* Profile-arena byte ranges a block's instrumentation occupies, from the
   translators' allocation discipline: cold allocates (ctr, edge) then
   the per-access misalignment slots; hot allocates one (ctr, edge) pair
   and aliases ma_base to it. *)
let arena_ranges (b : B.t) =
  if b.B.kind = B.Cold then
    [ (b.B.ctr_addr, 8); (b.B.ma_base, 4 * max 1 b.B.n_accesses) ]
  else [ (b.B.ctr_addr, 8) ]

(* Semantic validation: would the live translator reproduce this entry
   here? Any mismatch is a reject — the caller falls back to live
   translation, which is always safe. *)
let validate se (r : rentry) ~entry_tos ~flag =
  let eng = se.se_eng in
  r.r_tos = entry_tos && r.r_flag = flag
  && span_matches eng.E.mem ~chunks:r.r_span ~prots:r.r_prots
  && (r.r_phase = 0
     ||
     let use, taken = profile_seeds eng r.r_entry in
     use = r.r_use && taken = r.r_taken)

let remap_reason ~old_id ~new_id = function
  | I.Heat id when id = old_id -> Some (I.Heat new_id)
  | I.Misalign_regen id when id = old_id -> Some (I.Misalign_regen new_id)
  | I.Smc id when id = old_id -> Some (I.Smc new_id)
  | I.Spec_fail (id, c) when id = old_id -> Some (I.Spec_fail (new_id, c))
  | I.Nat_recover id when id = old_id -> Some (I.Nat_recover new_id)
  | (I.Heat _ | I.Misalign_regen _ | I.Smc _ | I.Spec_fail _ | I.Nat_recover _)
    ->
    None (* embeds a foreign block id: not a self-contained recording *)
  | r -> Some r

(* Structural install: rebase intra-block branch targets by the new
   tcache position and remap the block's own id in exit reasons — by
   constructor, so a coincidental integer equal to the id elsewhere is
   never touched. Returns None (install refused) if any target escapes
   the recorded span or any embedded id is foreign. *)
let rewrite_bundles (r : rentry) ~new_id ~new_tstart =
  let old_id = r.r_block.B.id in
  let old_t = r.r_block.B.tstart in
  let delta = new_tstart - old_t in
  let ok = ref true in
  let target = function
    | I.To idx ->
      if idx < old_t || idx >= old_t + r.r_block.B.tlen then ok := false;
      I.To (idx + delta)
    | I.Out reason -> (
      match remap_reason ~old_id ~new_id reason with
      | Some reason -> I.Out reason
      | None ->
        ok := false;
        I.Out reason)
  in
  let sem = function
    | I.Br t -> I.Br (target t)
    | I.Chk_s (g, t) -> I.Chk_s (g, target t)
    | I.Chk_a (g, t) -> I.Chk_a (g, target t)
    | I.Hotc (s, thr, id) when id = old_id -> I.Hotc (s, thr, new_id)
    | I.Hotc _ as s ->
      ok := false;
      s (* embeds a foreign block id: not a self-contained recording *)
    | s -> s
  in
  let out =
    Array.map
      (fun b ->
        {
          b with
          Ipf.Bundle.slots =
            Array.map (fun (i : I.t) -> { i with I.sem = sem i.I.sem }) b.Ipf.Bundle.slots;
          stops = Array.copy b.Ipf.Bundle.stops;
        })
      r.r_bundles
  in
  if !ok then Some out else None

let unpin cache ranges =
  cache.B.pins <-
    List.filter (fun p -> not (List.exists (fun q -> p = q) ranges)) cache.B.pins

(* Install a recorded translation, reproducing exactly the live
   translator's side effects: fresh id, pinned arena slots, bundles
   appended at the current tcache tail, source pages watched, the
   recorded Account delta replayed — and for cold blocks, registration
   (hot registration is the engine's job, mirroring Hot.translate). *)
let install se (r : rentry) =
  let eng = se.se_eng in
  let cache = eng.E.cache in
  let ranges = arena_ranges r.r_block in
  let pinned =
    List.for_all (fun (start, len) -> B.pin_arena cache ~start ~len) ranges
  in
  if not pinned then begin
    (* roll back the pins that did land *)
    unpin cache ranges;
    None
  end
  else begin
    let new_id = B.fresh_id cache in
    let new_tstart = Ipf.Tcache.length eng.E.tcache in
    match rewrite_bundles r ~new_id ~new_tstart with
    | None ->
      unpin cache ranges;
      None
    | Some bundles ->
      let first = Ipf.Tcache.append_list eng.E.tcache (Array.to_list bundles) in
      assert (first = new_tstart);
      let b =
        {
          (copy_block r.r_block) with
          B.id = new_id;
          tstart = new_tstart;
          live = true;
          registered = 0;
        }
      in
      if b.B.kind = B.Cold then B.register cache b;
      let first_page = b.B.entry lsr page_bits in
      let last_page = max b.B.entry (b.B.code_end - 1) lsr page_bits in
      for p = first_page to last_page do
        Ia32.Memory.watch_page eng.E.mem (p lsl page_bits)
      done;
      A.add_into ~dst:eng.E.acct r.r_acct;
      Some b
  end

let eliminate_cycles se (b : B.t) =
  let cost = se.se_eng.E.machine.M.cost in
  let n = Array.length b.B.insns in
  if b.B.kind = B.Cold then
    se.se_stats.eliminated_cold_cycles <-
      se.se_stats.eliminated_cold_cycles + (n * cost.Ipf.Cost.cold_translate_per_insn)
  else
    se.se_stats.eliminated_hot_cycles <-
      se.se_stats.eliminated_hot_cycles + (n * cost.Ipf.Cost.hot_translate_per_insn)

(* Record a just-translated block. Taken immediately, before the engine
   can chain or patch anything: the copies capture the translation
   exactly as the translator produced it. *)
let record se ~pc ~entry ~occ ~entry_tos ~flag (b : B.t) delta =
  let eng = se.se_eng in
  let bundles =
    Array.init b.B.tlen (fun i ->
        copy_bundle (Ipf.Tcache.get eng.E.tcache (b.B.tstart + i)))
  in
  let chunks, prots = span eng.E.mem ~lo:b.B.entry ~hi:b.B.code_end in
  let use, taken = if pc = 1 then profile_seeds eng entry else (0, 0) in
  let r =
    {
      r_phase = pc;
      r_entry = entry;
      r_occ = occ;
      r_tos = entry_tos;
      r_flag = flag;
      r_use = use;
      r_taken = taken;
      r_span = chunks;
      r_prots = prots;
      r_block = copy_block b;
      r_bundles = bundles;
      r_acct = delta;
    }
  in
  Hashtbl.replace se.se_store.st_tbl (pc, entry, occ) r;
  se.se_stats.recorded <- se.se_stats.recorded + 1

(* The engine's translate filter. Total: every path either installs an
   equivalent block or runs [live] exactly once. *)
let filter se ~phase ~entry ~entry_tos ~flag ~live =
  let pc = phase_code phase in
  let occ =
    match Hashtbl.find_opt se.se_occ (pc, entry) with Some n -> n | None -> 0
  in
  let bump () = Hashtbl.replace se.se_occ (pc, entry) (occ + 1) in
  let installed =
    match Hashtbl.find_opt se.se_store.st_tbl (pc, entry, occ) with
    | None -> None
    | Some r ->
      if se.se_verify && not (validate se r ~entry_tos ~flag) then begin
        se.se_stats.rejects <- se.se_stats.rejects + 1;
        None
      end
      else (
        match install se r with
        | Some b -> Some b
        | None ->
          se.se_stats.rejects <- se.se_stats.rejects + 1;
          None)
  in
  match installed with
  | Some b ->
    se.se_stats.hits <- se.se_stats.hits + 1;
    eliminate_cycles se b;
    bump ();
    Some b
  | None -> (
    se.se_stats.misses <- se.se_stats.misses + 1;
    let before = A.copy se.se_eng.E.acct in
    match live () with
    | Some b ->
      let delta = A.sub se.se_eng.E.acct before in
      if not se.se_readonly then record se ~pc ~entry ~occ ~entry_tos ~flag b delta;
      bump ();
      Some b
    | None ->
      (* hot translation declined: deterministic, so the warm run declines
         here too — nothing recorded, occurrence not consumed *)
      None)

let attach ?(verify = true) ?(readonly = false) store eng =
  let se =
    {
      se_store = store;
      se_eng = eng;
      se_verify = verify;
      se_readonly = readonly;
      se_occ = Hashtbl.create 64;
      se_stats =
        {
          hits = 0;
          misses = 0;
          rejects = 0;
          recorded = 0;
          eliminated_cold_cycles = 0;
          eliminated_hot_cycles = 0;
        };
    }
  in
  eng.E.translate_filter <- Some (filter se);
  se

(* ---- AOT sweep ------------------------------------------------------------ *)

(* Statically known successors of a translated block: its fall-through
   plus every direct branch/call target the terminator names. *)
let successors mem (b : B.t) =
  match Ia32el.Discover.decode_bb mem b.B.entry with
  | exception _ -> []
  | bb -> (
    let base = Ia32el.Discover.succs bb in
    match bb.Ia32el.Discover.term with
    | Ia32el.Discover.T_call (target, ret) -> target :: ret :: base
    | Ia32el.Discover.T_syscall (_, next) -> next :: base
    | _ -> base)

let sweep se ~roots ~lo ~hi =
  let eng = se.se_eng in
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter (fun r -> Queue.add r q) roots;
  let translated = ref 0 in
  while not (Queue.is_empty q) do
    let entry = Queue.pop q in
    if entry >= lo && entry < hi && not (Hashtbl.mem seen entry) then begin
      Hashtbl.replace seen entry ();
      let live () =
        match Ia32el.Cold.translate eng.E.cold_env ~entry ~entry_tos:0 ~stage2:false with
        | b -> Some b
        | exception Ia32el.Cold.Cannot_translate _ -> None
      in
      match
        filter se ~phase:Obs.Trace.Cold ~entry ~entry_tos:0 ~flag:false ~live
      with
      | Some b ->
        incr translated;
        List.iter (fun s -> Queue.add s q) (successors eng.E.mem b)
      | None -> ()
    end
  done;
  !translated
