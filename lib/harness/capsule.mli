(** Crash capsules: self-contained deterministic reproductions of one
    failing run, serialized to a file [ia32el-run --replay] re-executes.

    A capsule holds only plain data: the initial guest image (every
    mapped page's bytes and protection, dumped before the engine maps
    its profile arena), the initial architectural state, the translator
    {!Ia32el.Config.t} and the run parameters (fuel, watchdog bound,
    auto-snapshot cadence, injection seed, lockstep mode), plus the
    commit log the failing run produced (event, EIP, thread, virtual
    clock per commit point) and the failure itself. The whole stack is
    deterministic, so replaying from the start with the same parameters
    reproduces the run bit-identically; {!replay} verifies the commit
    log entry by entry and re-checks the failure class. The nearest
    auto-snapshot's epoch id and absolute trace index are recorded as a
    time-travel anchor into the run's {!Obs.Trace} stream. *)

val magic : string
(** File format tag, ["IA32EL-CAPSULE/2"]: version 2 adds the configuration fingerprint ({!Persist.config_fingerprint}) checked at load — a capsule recorded by a build with different translation semantics is refused with a structured error (component ["capsule"]) instead of silently mis-replaying. *)

val log_cap : int
(** Commit points retained in a capsule's log (the total count is kept
    even when the log is truncated). *)

type event = Ev_syscall of int | Ev_fault of string | Ev_exit of int

type entry = {
  en_index : int;
  en_clock : int; (** virtual clock at the commit point *)
  en_tid : int;
  en_eip : int;
  en_event : event;
}

type sabotage = { sb_dispatch : int; sb_reg : Ia32.Insn.reg; sb_value : int }
(** A deterministic, serializable corruption: at the [sb_dispatch]-th
    slow-path dispatch, silently overwrite the machine's canonical copy
    of one guest register — the wrong-but-running state a real
    translator bug produces, as plain data a capsule can reinstall on
    replay ([ia32el-run --sabotage], the lockstep oracle self-test). *)

type failure =
  | F_bt_error of {
      fb_component : string;
      fb_what : string;
      fb_eip : int option;
      fb_block : int option;
      fb_detail : string option;
    }  (** a structured {!Ia32el.Bt_error} (includes the watchdog) *)
  | F_divergence of {
      fd_commit_index : int;
      fd_diffs : string list;
      fd_window : string list;
    }  (** lockstep divergence *)
  | F_unhandled_fault of string
  | F_other of string

type t

(** {1 Recording} *)

type recorder

val recorder :
  ?max_cycles:int ->
  ?snap_every:int ->
  ?inject_seed:int ->
  ?sabotage:sabotage ->
  ?lockstep:bool ->
  config:Ia32el.Config.t ->
  fuel:int ->
  Ia32.Memory.t ->
  Ia32.State.t ->
  recorder
(** Capture the initial image and state {e now} — call after
    [Ia32.Asm.load] but before the engine is created (the engine maps
    its runtime-private arena into the guest image). *)

val observe : recorder -> Ia32el.Engine.t -> unit
(** Chain a commit-log recorder onto the engine's [on_commit] observer
    (composes with the injector and the lockstep checker; the commit is
    recorded before the previous observer runs, so a diverging commit
    is in the log by the time the checker raises). Also remembers the
    engine so {!finalize} can read the nearest snapshot anchor. *)

val recorded : recorder -> int
(** Commit points recorded so far. *)

val finalize : recorder -> failure -> t
val failure_of_bt : Ia32el.Bt_error.t -> failure
val failure_of_divergence : Ia32el.Lockstep.divergence -> failure

val sabotage_attach : sabotage -> Ia32el.Engine.t -> unit
(** Install the corruption, chaining any existing [on_dispatch] hook. *)

val parse_sabotage : string -> (sabotage, string) result
(** Parse a ["DISPATCH:REG:VALUE"] spec (e.g. ["10:esi:0xBEEF"]). *)

(** {1 Persistence} *)

val save : string -> t -> unit

val load : string -> t
(** @raise Invalid_argument when the file is not a capsule.
    @raise Ia32el.Bt_error.Error (component ["capsule"]) when the
    recorded configuration fingerprint does not match what this build
    computes for the same configuration — the capsule came from a build
    with different translation semantics and replaying it would not
    reproduce the recorded run. *)

val corrupt_config_fp : t -> int64 -> t
(** Fault-injection support (see {!Inject}): a copy of the capsule with
    its configuration fingerprint overwritten, for proving the load-time
    rejection above. *)

val describe : t -> string
(** Multi-line human summary (failure, image size, parameters, log
    length, snapshot anchor). *)

val failure_class : failure -> string
val describe_failure : failure -> string

(** {1 Replay} *)

type verdict = {
  v_reproduced : bool;
      (** failure class matched and every recorded commit matched *)
  v_log_match : int; (** commit points that matched the recorded log *)
  v_log_total : int; (** commit points the capsule recorded *)
  v_failure_got : string;
}

val replay : ?log:(string -> unit) -> t -> verdict
(** Rebuild memory and state from the capsule and re-run from the start
    under the recorded parameters (lockstep when the original ran
    lockstep, with the injector re-attached when a seed was recorded),
    verifying each commit point against the recorded log. [log] receives
    a diagnostic line at the first mismatching commit, if any. *)
