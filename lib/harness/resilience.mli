(** Resilience harness: one-call runners tying a workload to the lockstep
    differential vehicle ({!Ia32el.Lockstep}) and the deterministic fault
    injector ({!Inject}). *)

val default_fuel : int

type lockstep_result = {
  report : Ia32el.Lockstep.report;
  engine : Ia32el.Engine.t;
  inject_stats : Inject.stats option;
  output : string;  (** guest console output (engine side) *)
  capsule_written : string option;
      (** crash-capsule file written, when [capsule] was given and the
          run failed *)
}

val run_lockstep :
  ?config:Ia32el.Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?seed:int ->
  ?fuel:int ->
  ?max_cycles:int ->
  ?snap_every:int ->
  ?capsule:string ->
  ?sabotage:Capsule.sabotage ->
  ?attach_extra:(Ia32el.Engine.t -> unit) ->
  Workloads.Common.t ->
  scale:int ->
  lockstep_result
(** Run a workload under the engine with the reference interpreter in
    lockstep. [seed] attaches the chaos injector; [attach_extra] runs
    after it (test hook for seeding deliberate bugs). [max_cycles] arms
    the runaway-guest watchdog, [snap_every] the auto-snapshot cadence.
    [capsule] names a crash-capsule file: written when the run diverges,
    ends in an unhandled fault, or raises a structured
    [Ia32el.Bt_error.Error] (the error is re-raised after the capsule is
    saved). [sabotage] installs a deterministic register corruption
    (recorded in the capsule, reinstalled on replay) — the lockstep
    oracle's self-test. *)

type plain_result = {
  outcome : Ia32el.Engine.outcome;
  engine : Ia32el.Engine.t;
  inject_stats : Inject.stats option;
  output : string;
  capsule_written : string option;
}

val run_plain :
  ?config:Ia32el.Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?seed:int ->
  ?fuel:int ->
  ?max_cycles:int ->
  ?snap_every:int ->
  ?capsule:string ->
  ?sabotage:Capsule.sabotage ->
  ?attach:(Ia32el.Engine.t -> unit) ->
  Workloads.Common.t ->
  scale:int ->
  plain_result
(** Run a workload under the engine alone (no reference), optionally with
    the injector attached. [attach] runs after the injector, before the
    run — the CLI uses it to install traces and profiles. [max_cycles],
    [snap_every], [capsule] and [sabotage] as in {!run_lockstep}. *)
