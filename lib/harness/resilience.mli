(** Resilience harness: one-call runners tying a workload to the lockstep
    differential vehicle ({!Ia32el.Lockstep}) and the deterministic fault
    injector ({!Inject}). *)

val default_fuel : int

type lockstep_result = {
  report : Ia32el.Lockstep.report;
  engine : Ia32el.Engine.t;
  inject_stats : Inject.stats option;
  output : string;  (** guest console output (engine side) *)
}

val run_lockstep :
  ?config:Ia32el.Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?seed:int ->
  ?fuel:int ->
  ?attach_extra:(Ia32el.Engine.t -> unit) ->
  Workloads.Common.t ->
  scale:int ->
  lockstep_result
(** Run a workload under the engine with the reference interpreter in
    lockstep. [seed] attaches the chaos injector; [attach_extra] runs
    after it (test hook for seeding deliberate bugs). *)

type plain_result = {
  outcome : Ia32el.Engine.outcome;
  engine : Ia32el.Engine.t;
  inject_stats : Inject.stats option;
  output : string;
}

val run_plain :
  ?config:Ia32el.Config.t ->
  ?cost:Ipf.Cost.t ->
  ?dcache:Ipf.Dcache.t ->
  ?seed:int ->
  ?fuel:int ->
  ?attach:(Ia32el.Engine.t -> unit) ->
  Workloads.Common.t ->
  scale:int ->
  plain_result
(** Run a workload under the engine alone (no reference), optionally with
    the injector attached. [attach] runs after the injector, before the
    run — the CLI uses it to install traces and profiles. *)
