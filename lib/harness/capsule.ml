(* Crash capsules: a self-contained, deterministic reproduction of one
   failing run.

   A capsule stores only plain data — the initial guest image (mapped
   pages with bytes and protections, dumped BEFORE the engine maps its
   profile arena), the initial architectural state, the translator
   configuration and the run parameters (fuel, watchdog bound, snapshot
   cadence, injection seed, lockstep mode) — plus the commit log the
   failing run produced and a description of the failure itself. Because
   the whole stack is deterministic, replaying from the start with the
   same parameters reproduces the run bit-identically; the replay
   verifies this by comparing every commit point (event, EIP, thread,
   virtual clock) against the recorded log and re-checking the failure
   class. The nearest auto-snapshot's epoch id and trace index are kept
   as a time-travel anchor into the recorded trace. *)

module E = Ia32el.Engine
module L = Ia32el.Lockstep
module Memory = Ia32.Memory

let magic = "IA32EL-CAPSULE/2"
let log_cap = 65536

type event = Ev_syscall of int | Ev_fault of string | Ev_exit of int

type entry = {
  en_index : int;
  en_clock : int;
  en_tid : int;
  en_eip : int;
  en_event : event;
}

(* A deterministic, serializable corruption: at the [sb_dispatch]-th
   slow-path dispatch, silently overwrite the machine's canonical copy of
   one guest register — the wrong-but-running state a real translator bug
   produces, expressed as plain data so a capsule can reinstall it on
   replay and reproduce the captured divergence. *)
type sabotage = { sb_dispatch : int; sb_reg : Ia32.Insn.reg; sb_value : int }

type failure =
  | F_bt_error of {
      fb_component : string;
      fb_what : string;
      fb_eip : int option;
      fb_block : int option;
      fb_detail : string option;
    }
  | F_divergence of {
      fd_commit_index : int;
      fd_diffs : string list;
      fd_window : string list;
    }
  | F_unhandled_fault of string
  | F_other of string

(* plain-data image of Ia32.State.t minus memory and decode cache *)
type arch = {
  a_regs : int array;
  a_eip : int;
  a_cf : bool;
  a_pf : bool;
  a_af : bool;
  a_zf : bool;
  a_sf : bool;
  a_of : bool;
  a_df : bool;
  a_fval : float array;
  a_ival : int64 array;
  a_tags : Ia32.Fpu.tag array;
  a_top : int;
  a_c0 : bool;
  a_c1 : bool;
  a_c2 : bool;
  a_c3 : bool;
  a_xmm_lo : int64 array;
  a_xmm_hi : int64 array;
}

type t = {
  c_magic : string;
  c_pages : (int * Memory.prot * string) list; (* page no, prot, bytes *)
  c_arch : arch;
  c_config : Ia32el.Config.t;
  c_config_fp : int64;
      (* fingerprint of [c_config] under the writer's build — a reader
         whose translation semantics drifted recomputes a different
         value and must refuse to replay rather than mis-reproduce *)
  c_fuel : int;
  c_max_cycles : int option;
  c_snap_every : int option;
  c_inject_seed : int option;
  c_lockstep : bool;
  c_sabotage : sabotage option;
  c_snap_epoch : int option; (* nearest snapshot: epoch id... *)
  c_snap_trace_index : int option; (* ...and its absolute trace index *)
  c_log : entry list; (* first [log_cap] commit points *)
  c_log_total : int; (* commit points in the full run *)
  c_failure : failure;
}

(* ---- capture ----------------------------------------------------------- *)

let arch_of (st : Ia32.State.t) =
  let f = st.Ia32.State.fpu in
  {
    a_regs = Array.copy st.Ia32.State.regs;
    a_eip = st.Ia32.State.eip;
    a_cf = st.Ia32.State.cf;
    a_pf = st.Ia32.State.pf;
    a_af = st.Ia32.State.af;
    a_zf = st.Ia32.State.zf;
    a_sf = st.Ia32.State.sf;
    a_of = st.Ia32.State.of_;
    a_df = st.Ia32.State.df;
    a_fval = Array.copy f.Ia32.Fpu.fval;
    a_ival = Array.copy f.Ia32.Fpu.ival;
    a_tags = Array.copy f.Ia32.Fpu.tags;
    a_top = f.Ia32.Fpu.top;
    a_c0 = f.Ia32.Fpu.c0;
    a_c1 = f.Ia32.Fpu.c1;
    a_c2 = f.Ia32.Fpu.c2;
    a_c3 = f.Ia32.Fpu.c3;
    a_xmm_lo = Array.copy st.Ia32.State.xmm_lo;
    a_xmm_hi = Array.copy st.Ia32.State.xmm_hi;
  }

let dump_pages mem =
  List.filter_map
    (fun p ->
      match Memory.prot_of mem (p lsl Memory.page_bits) with
      | None -> None
      | Some prot ->
        Some (p, prot, Memory.dump_bytes mem (p lsl Memory.page_bits) Memory.page_size))
    (Memory.mapped_pages mem)

type recorder = {
  r_pages : (int * Memory.prot * string) list;
  r_arch : arch;
  r_config : Ia32el.Config.t;
  r_fuel : int;
  r_max_cycles : int option;
  r_snap_every : int option;
  r_inject_seed : int option;
  r_sabotage : sabotage option;
  r_lockstep : bool;
  mutable r_engine : E.t option;
  r_log : entry Queue.t;
  mutable r_total : int;
}

let recorder ?max_cycles ?snap_every ?inject_seed ?sabotage
    ?(lockstep = false) ~config ~fuel mem (st : Ia32.State.t) =
  {
    r_pages = dump_pages mem;
    r_arch = arch_of st;
    r_config = config;
    r_fuel = fuel;
    r_max_cycles = max_cycles;
    r_snap_every = snap_every;
    r_inject_seed = inject_seed;
    r_sabotage = sabotage;
    r_lockstep = lockstep;
    r_engine = None;
    r_log = Queue.create ();
    r_total = 0;
  }

let event_of = function
  | E.Commit_syscall n -> Ev_syscall n
  | E.Commit_fault f -> Ev_fault (Ia32.Fault.to_string f)
  | E.Commit_exit code -> Ev_exit code

let record r eng ev (st : Ia32.State.t) =
  let ix = r.r_total in
  r.r_total <- ix + 1;
  if ix < log_cap then
    Queue.add
      {
        en_index = ix;
        en_clock = E.clock eng;
        en_tid = E.current_tid eng;
        en_eip = st.Ia32.State.eip;
        en_event = event_of ev;
      }
      r.r_log

(* Chain onto whatever observer is already installed (the injector and
   the lockstep checker do the same), recording the commit BEFORE the
   previous observer runs so a diverging commit is in the log by the
   time the lockstep checker raises. *)
let observe r (eng : E.t) =
  r.r_engine <- Some eng;
  let prev = eng.E.on_commit in
  eng.E.on_commit <-
    Some
      (fun ev st ->
        record r eng ev st;
        match prev with Some f -> f ev st | None -> ())

let recorded r = r.r_total

let finalize r failure =
  let snap_epoch, snap_ix =
    match r.r_engine with
    | Some eng -> (
      match eng.E.snapshots with
      | ep :: _ -> (Some (E.epoch_id ep), Some (E.epoch_trace_index ep))
      | [] -> (None, None))
    | None -> (None, None)
  in
  {
    c_magic = magic;
    c_pages = r.r_pages;
    c_arch = r.r_arch;
    c_config = r.r_config;
    c_config_fp = Persist.config_fingerprint r.r_config;
    c_fuel = r.r_fuel;
    c_max_cycles = r.r_max_cycles;
    c_snap_every = r.r_snap_every;
    c_inject_seed = r.r_inject_seed;
    c_sabotage = r.r_sabotage;
    c_lockstep = r.r_lockstep;
    c_snap_epoch = snap_epoch;
    c_snap_trace_index = snap_ix;
    c_log = List.of_seq (Queue.to_seq r.r_log);
    c_log_total = r.r_total;
    c_failure = failure;
  }

let failure_of_bt (e : Ia32el.Bt_error.t) =
  F_bt_error
    {
      fb_component = e.Ia32el.Bt_error.component;
      fb_what = e.Ia32el.Bt_error.what;
      fb_eip = e.Ia32el.Bt_error.eip;
      fb_block = e.Ia32el.Bt_error.block;
      fb_detail = e.Ia32el.Bt_error.detail;
    }

let failure_of_divergence (d : L.divergence) =
  F_divergence
    {
      fd_commit_index = d.L.commit_index;
      fd_diffs = d.L.diffs;
      fd_window = d.L.window;
    }

let sabotage_attach sb (eng : E.t) =
  let prev = eng.E.on_dispatch in
  let n = ref 0 in
  eng.E.on_dispatch <-
    Some
      (fun eip ->
        incr n;
        if !n = sb.sb_dispatch then
          Ipf.Machine.set32 eng.E.machine
            (Ia32el.Regs.gr_of_reg sb.sb_reg)
            sb.sb_value;
        match prev with Some f -> f eip | None -> ())

let reg_names =
  Ia32.Insn.
    [
      ("eax", Eax); ("ecx", Ecx); ("edx", Edx); ("ebx", Ebx);
      ("esp", Esp); ("ebp", Ebp); ("esi", Esi); ("edi", Edi);
    ]
  [@ocamlformat "disable"]

let reg_of_string s = List.assoc_opt (String.lowercase_ascii s) reg_names

let string_of_reg r =
  fst (List.find (fun (_, r') -> r' = r) reg_names)

let parse_sabotage spec =
  match String.split_on_char ':' spec with
  | [ d; r; v ] -> (
    match (int_of_string_opt d, reg_of_string r, int_of_string_opt v) with
    | Some sb_dispatch, Some sb_reg, Some sb_value
      when sb_dispatch > 0 ->
      Ok { sb_dispatch; sb_reg; sb_value }
    | _ ->
      Error
        (Printf.sprintf
           "bad sabotage spec %S (want DISPATCH:REG:VALUE, e.g.             10:esi:0xBEEF)"
           spec))
  | _ ->
    Error
      (Printf.sprintf
         "bad sabotage spec %S (want DISPATCH:REG:VALUE, e.g. 10:esi:0xBEEF)"
         spec)

(* ---- persistence ------------------------------------------------------- *)

(* The magic goes into the file as a raw byte header, checked {e before}
   anything is unmarshaled: [Marshal.from_channel] at a wrong type is
   memory-unsafe, so it must never see a non-capsule file. *)
let save file c =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc c [])

let corrupt_config_fp c fp = { c with c_config_fp = fp }

let load file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bad got =
        invalid_arg
          (Printf.sprintf "%s: not an ia32el crash capsule (header %S)" file
             got)
      in
      let n = String.length magic in
      let header = try really_input_string ic n with End_of_file -> bad "" in
      if header <> magic then bad header;
      let c =
        try (Marshal.from_channel ic : t)
        with _ ->
          invalid_arg (Printf.sprintf "%s: truncated or corrupt capsule" file)
      in
      if c.c_magic <> magic then bad c.c_magic;
      let fp = Persist.config_fingerprint c.c_config in
      if fp <> c.c_config_fp then
        Ia32el.Bt_error.fail ~component:"capsule"
          ~detail:
            (Printf.sprintf "recorded %Lx, this build computes %Lx"
               c.c_config_fp fp)
          "capsule configuration fingerprint mismatch: recorded by an \
           incompatible build, refusing to replay";
      c)

(* ---- description ------------------------------------------------------- *)

let failure_class = function
  | F_bt_error _ -> "bt-error"
  | F_divergence _ -> "divergence"
  | F_unhandled_fault _ -> "unhandled-fault"
  | F_other _ -> "other"

let describe_failure = function
  | F_bt_error f ->
    Printf.sprintf "Bt_error %s: %s%s" f.fb_component f.fb_what
      (match f.fb_detail with Some d -> " (" ^ d ^ ")" | None -> "")
  | F_divergence d ->
    Printf.sprintf "lockstep divergence at commit %d (%d field diffs)"
      d.fd_commit_index
      (List.length d.fd_diffs)
  | F_unhandled_fault f -> "unhandled fault " ^ f
  | F_other s -> s

let describe c =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "crash capsule (%s): %s\n" magic
       (describe_failure c.c_failure));
  Buffer.add_string b
    (Printf.sprintf
       "  image: %d pages; mode: %s; fuel %d%s%s%s\n"
       (List.length c.c_pages)
       (if c.c_lockstep then "lockstep" else "engine-only")
       c.c_fuel
       (match c.c_max_cycles with
       | Some n -> Printf.sprintf "; max-cycles %d" n
       | None -> "")
       (match c.c_snap_every with
       | Some n -> Printf.sprintf "; snapshot-every %d" n
       | None -> "")
       ((match c.c_inject_seed with
        | Some s -> Printf.sprintf "; inject seed %d" s
        | None -> "")
       ^
       match c.c_sabotage with
       | Some sb ->
         Printf.sprintf "; sabotage %d:%s:0x%x" sb.sb_dispatch
           (string_of_reg sb.sb_reg) sb.sb_value
       | None -> ""));
  Buffer.add_string b
    (Printf.sprintf "  commit log: %d recorded of %d total\n"
       (List.length c.c_log) c.c_log_total);
  (match (c.c_snap_epoch, c.c_snap_trace_index) with
  | Some id, Some ix ->
    Buffer.add_string b
      (Printf.sprintf "  nearest snapshot: epoch %d at trace index %d\n" id ix)
  | _ -> ());
  Buffer.contents b

(* ---- replay ------------------------------------------------------------ *)

type verdict = {
  v_reproduced : bool;
  v_log_match : int;
  v_log_total : int;
  v_failure_got : string;
}

let rebuild_mem c =
  let mem = Memory.create () in
  List.iter
    (fun (p, prot, bytes) ->
      let addr = p lsl Memory.page_bits in
      Memory.map mem ~addr ~len:Memory.page_size ~prot:Memory.prot_rwx;
      Memory.load_bytes mem addr bytes;
      Memory.protect mem ~addr ~len:Memory.page_size ~prot)
    c.c_pages;
  mem

let rebuild_state c mem =
  let st = Ia32.State.create mem in
  let a = c.c_arch in
  Array.blit a.a_regs 0 st.Ia32.State.regs 0 (Array.length a.a_regs);
  st.Ia32.State.eip <- a.a_eip;
  st.Ia32.State.cf <- a.a_cf;
  st.Ia32.State.pf <- a.a_pf;
  st.Ia32.State.af <- a.a_af;
  st.Ia32.State.zf <- a.a_zf;
  st.Ia32.State.sf <- a.a_sf;
  st.Ia32.State.of_ <- a.a_of;
  st.Ia32.State.df <- a.a_df;
  let f = st.Ia32.State.fpu in
  Array.blit a.a_fval 0 f.Ia32.Fpu.fval 0 (Array.length a.a_fval);
  Array.blit a.a_ival 0 f.Ia32.Fpu.ival 0 (Array.length a.a_ival);
  Array.blit a.a_tags 0 f.Ia32.Fpu.tags 0 (Array.length a.a_tags);
  f.Ia32.Fpu.top <- a.a_top;
  f.Ia32.Fpu.c0 <- a.a_c0;
  f.Ia32.Fpu.c1 <- a.a_c1;
  f.Ia32.Fpu.c2 <- a.a_c2;
  f.Ia32.Fpu.c3 <- a.a_c3;
  Array.blit a.a_xmm_lo 0 st.Ia32.State.xmm_lo 0 (Array.length a.a_xmm_lo);
  Array.blit a.a_xmm_hi 0 st.Ia32.State.xmm_hi 0 (Array.length a.a_xmm_hi);
  st

let entry_matches (e : entry) ~clock ~tid ~eip ~event =
  e.en_clock = clock && e.en_tid = tid && e.en_eip = eip && e.en_event = event

let replay ?(log = ignore) c =
  let mem = rebuild_mem c in
  let st = rebuild_state c mem in
  let expected = Array.of_list c.c_log in
  let matched = ref 0 and total = ref 0 and in_prefix = ref true in
  let verify eng ev (est : Ia32.State.t) =
    let ix = !total in
    incr total;
    if !in_prefix && ix < Array.length expected then
      if
        entry_matches expected.(ix) ~clock:(E.clock eng)
          ~tid:(E.current_tid eng) ~eip:est.Ia32.State.eip
          ~event:(event_of ev)
      then incr matched
      else begin
        in_prefix := false;
        log
          (Printf.sprintf
             "replay: commit %d differs from the recorded log (got %s at \
              0x%x, clock %d)"
             ix
             (match event_of ev with
             | Ev_syscall n -> Printf.sprintf "syscall %d" n
             | Ev_fault f -> "fault " ^ f
             | Ev_exit code -> Printf.sprintf "exit %d" code)
             est.Ia32.State.eip (E.clock eng))
      end
  in
  let observe (eng : E.t) =
    eng.E.max_cycles <- c.c_max_cycles;
    eng.E.snap_every <- c.c_snap_every;
    let prev = eng.E.on_commit in
    eng.E.on_commit <-
      Some
        (fun ev est ->
          verify eng ev est;
          match prev with Some f -> f ev est | None -> ())
  in
  let injector = Option.map (fun s -> Inject.create ~seed:s ()) c.c_inject_seed in
  let attach eng =
    Option.iter (fun i -> Inject.attach i eng) injector;
    Option.iter (fun sb -> sabotage_attach sb eng) c.c_sabotage;
    observe eng
  in
  let got =
    if c.c_lockstep then begin
      match
        L.run ~config:c.c_config ~fuel:c.c_fuel ~attach
          ~btlib:(module Btlib.Linuxsim)
          mem st
      with
      | report -> (
        match report.L.divergence with
        | Some d -> failure_of_divergence d
        | None -> (
          match report.L.outcome with
          | Some (E.Exited (code, _)) ->
            F_other (Printf.sprintf "clean exit %d" code)
          | Some (E.Unhandled_fault (f, _)) ->
            F_unhandled_fault (Ia32.Fault.to_string f)
          | Some E.Out_of_fuel | None -> F_other "out of fuel"))
      | exception Ia32el.Bt_error.Error e -> failure_of_bt e
    end
    else begin
      let eng = E.create ~config:c.c_config ~btlib:(module Btlib.Linuxsim) mem in
      attach eng;
      match E.run ~fuel:c.c_fuel eng st with
      | E.Exited (code, _) -> F_other (Printf.sprintf "clean exit %d" code)
      | E.Unhandled_fault (f, _) -> F_unhandled_fault (Ia32.Fault.to_string f)
      | E.Out_of_fuel -> F_other "out of fuel"
      | exception Ia32el.Bt_error.Error e -> failure_of_bt e
    end
  in
  let same_failure =
    match (c.c_failure, got) with
    | F_bt_error a, F_bt_error b ->
      a.fb_component = b.fb_component && a.fb_what = b.fb_what
    | F_divergence a, F_divergence b -> a.fd_commit_index = b.fd_commit_index
    | F_unhandled_fault a, F_unhandled_fault b -> a = b
    | F_other a, F_other b -> a = b
    | _ -> false
  in
  let log_ok = !in_prefix && !matched = Array.length expected in
  {
    v_reproduced = same_failure && log_ok;
    v_log_match = !matched;
    v_log_total = Array.length expected;
    v_failure_got = describe_failure got;
  }
