(** Coverage-steered differential fuzzer for the whole translation stack.

    A seeded splitmix64 generator produces {e well-formed} guest programs
    at the {!Ia32.Asm} DSL level (never raw bytes), drawing from weighted
    feature pools that map to the paper's hard cases: EFLAGS-dependent ALU
    chains, x87 push/pop churn across the TOS/TAG speculation boundary,
    MMX<->FP aliasing flips, SSE ops, misaligned and page-straddling
    accesses, bounded loops (including heat loops that push blocks into
    the hot phase), self-modifying stores, and guest-thread atoms
    (spawn/join pairs, deadlock-free futex handshakes, yields and the
    thread syscalls' error paths), all lockstep-checked. Every candidate runs under
    {!Ia32el.Lockstep} with a set of {!Inject} seeds; a diverging input is
    minimized by a structural shrinker over the DSL program and emitted as
    a paste-ready [Asm] reproducer.

    A feature-coverage map (opcode x operand-shape buckets from the
    generated instructions, engine-event buckets from the counters
    section of {!Ia32el.Engine.metrics}) steers generation toward
    unexercised
    paths; programs that light up new buckets are persisted to a corpus
    directory. *)

(** Deterministic splitmix64 PRNG (same stream discipline as {!Inject}). *)
module Rng : sig
  type t

  val create : int -> t
  val int : t -> int -> int (** uniform in [\[0, n)], [n > 0] *)

  val bool : t -> bool
  val choose : t -> 'a array -> 'a
  val imm32 : t -> int (** uniform 32-bit, biased toward small values *)
end

(** {1 Programs} *)

(** A generated instruction-level item. Branch targets are symbolic so the
    shrinker can restructure programs without address arithmetic. *)
type fitem =
  | FI of Ia32.Insn.insn
  | FLabel of string
  | FJmp of string
  | FJcc of Ia32.Insn.cond * string
  | FPatch of string * int
      (** self-modifying store: patch the imm32 of the [mov reg, imm32]
          sitting at the named label (offset +1 into its encoding) *)
  | FMovlab of Ia32.Insn.reg * string
      (** load the named label's address into a register (thread entry
          points for the spawn syscall) *)

type atom =
  | Block of { pool : string; items : fitem list }
  | Loop of { pool : string; id : int; count : int; body : atom list }

type prog = { seed : int; atoms : atom list }

val scratch_base : int
(** Base of the generated programs' scratch data region (register [ebp]
    holds this value throughout a generated program). *)

val data_items : Ia32.Asm.item list
(** The data section every generated program is built with. *)

val to_items : prog -> Ia32.Asm.item list
(** Lower to assembler items (includes the ["start"] label). *)

val build_image : prog -> Ia32.Asm.image
val insn_count : prog -> int (** emitted instructions, labels excluded *)

val prog_insns : prog -> Ia32.Insn.insn list
(** Every instruction the program assembles to, with symbolic branch
    targets replaced by representative in-range addresses — the input to
    the encode/decode round-trip property. *)

val pools : prog -> string list
(** Distinct generator pools the program draws from. *)

val pp_prog_asm : Format.formatter -> prog -> unit
val pp_prog_ocaml : Format.formatter -> prog -> unit
(** Paste-ready OCaml [Asm] program (code and data sections). *)

(** {1 Coverage} *)

module Coverage : sig
  type t

  val create : unit -> t
  val note : t -> string -> bool (** [true] when the bucket is new *)

  val covered : t -> string -> bool
  val cardinal : t -> int
  val to_list : t -> (string * int) list (** sorted [(bucket, hits)] *)
end

val static_buckets : Ia32.Insn.insn -> string list
(** Opcode and operand-shape coverage buckets of one instruction. *)

(** {1 Generation} *)

val generate : ?steer:Coverage.t -> rng:Rng.t -> max_insns:int -> int -> prog
(** [generate ~rng ~max_insns seed] builds one well-formed program of at
    most [max_insns] emitted instructions. [steer] biases pool selection
    toward pools whose target buckets are still uncovered. [seed] is
    recorded in the program for reproduction. *)

val gen_insn : Rng.t -> Ia32.Insn.insn
(** One random encodable instruction (decoder-surface sampling, used by
    the boundary fuzz and round-trip tests); not necessarily executable
    in a well-formed program. *)

(** {1 Running} *)

type run_result =
  | R_ok of { commits : int; exit_code : int }
  | R_halted of Ia32.Fault.t
      (** both vehicles agreed on a terminal architectural fault *)
  | R_fuel
  | R_diverged of Ia32el.Lockstep.divergence
  | R_crash of string (** an OCaml exception escaped the stack *)

type exec = { result : run_result; engine : Ia32el.Engine.t option }

val run_one :
  ?config:Ia32el.Config.t ->
  ?fuel:int ->
  ?inject_seed:int ->
  ?attach_extra:(Ia32el.Engine.t -> unit) ->
  prog ->
  exec
(** Build the program image and run it under lockstep, optionally with
    the chaos injector at [inject_seed]; [attach_extra] runs after the
    injector (it must chain [on_dispatch] if both are used). *)

(** {1 Findings and shrinking} *)

type classification = Diverged | Crashed | Livelocked

type finding = {
  prog : prog;
  inject_seed : int option;
  classification : classification;
  detail : string;
  window : string list; (** lockstep reproducer window, when diverged *)
}

val shrink :
  ?budget:int ->
  ?config:Ia32el.Config.t ->
  ?fuel:int ->
  ?attach_extra:(Ia32el.Engine.t -> unit) ->
  finding ->
  finding
(** Structural minimization: drop injection seed, drop atoms (ordered by
    the lockstep reproducer window — atoms not implicated are tried
    first), flatten loops and shrink trip counts, drop single
    instructions, simplify operands. Each candidate re-runs lockstep and
    is kept only when the same failure class persists; [budget] bounds
    the number of re-runs. Deterministic. *)

val pp_finding : Format.formatter -> finding -> unit

(** {1 Campaigns} *)

type campaign_config = {
  seed : int;
  runs : int; (** programs to generate *)
  max_insns : int;
  inject_seeds : int list; (** chaos seeds per program (plus a clean run) *)
  shrink_findings : bool;
  shrink_budget : int;
  fuel : int;
  max_findings : int; (** stop the campaign after this many findings *)
  corpus_dir : string option;
  attach_extra : (Ia32el.Engine.t -> unit) option;
  log : string -> unit;
}

val default_campaign : campaign_config

type campaign_result = {
  programs : int;
  executions : int; (** program x seed lockstep runs *)
  pools_hit : (string * int) list;
  coverage : (string * int) list;
  findings : finding list; (** shrunk when [shrink_findings] *)
  corpus_saved : int;
}

val campaign : campaign_config -> campaign_result

(** {1 Fork-server}

    A persistent lockstep session over one base program: engine,
    translations and the reference vehicle are built once, then each
    input is served by snapshotting both sides (copy-on-write page
    journal + OS/translator checkpoints), writing the mutated bytes into
    the scratch region of both memories, running the pair in lockstep
    and reverting. Runs after the first skip engine creation and keep
    translated blocks warm, which is where the throughput multiple over
    {!run_one} comes from. *)

type server

val mutation_span : int
(** Size of the mutable input region (the scratch area); mutation
    offsets are taken modulo this, relative to {!scratch_base}. *)

val server_start : ?config:Ia32el.Config.t -> ?fuel:int -> prog -> server
(** Load the program, build the session and leave it at the post-startup
    rest point every subsequent input starts from. *)

val server_run : server -> (int * int) list -> run_result
(** [server_run srv muts] snapshots, applies the [(offset, byte)]
    mutation to both memories, runs the pair in lockstep and reverts.
    [[]] runs the unmutated base input. *)

val server_runs : server -> int
val server_pages_restored : server -> int
(** Cumulative pages restored by the server's reverts (both sides). *)

type forkserver_config = {
  fs_seed : int;
  fs_programs : int; (** base programs, one server each *)
  fs_mutations : int; (** mutated runs per base, after the base input *)
  fs_max_insns : int;
  fs_fuel : int;
  fs_max_findings : int;
  fs_log : string -> unit;
}

val default_forkserver : forkserver_config

type forkserver_result = {
  fs_runs : int; (** inputs executed, base inputs included *)
  fs_bases : int;
  fs_findings : (finding * (int * int) list) list;
      (** each finding with the mutation that hit it *)
  fs_pages_restored : int;
}

val forkserver_campaign : forkserver_config -> forkserver_result

(** {1 CLI helpers} *)

val parse_seed_spec : string -> (int list, string) result
(** Accepts ["3"], ["0-8"], ["3,7,11"] and combinations (["1,4-6"]). *)
