(* Deterministic fault injector: a seed-driven chaos source for the
   translator's recovery machinery. Attached to an engine it perturbs
   execution at dispatch boundaries through the engine's
   semantics-preserving chaos primitives, plus the Vos transient-failure
   hook and the Tcache capacity mode. Everything is driven by a splitmix64
   stream from the seed, so a run is exactly reproducible from
   (guest image, seed).

   Injection points:
   - [tos_rotation]      forced FP-stack speculation misses
   - [sse_scramble]      forced SSE format-speculation misses
   - [smc_invalidate]    spurious invalidation of live blocks
   - [cache_flush]       wholesale translation-cache flushes
   - [capacity_squeeze]  eviction storms via a tiny Tcache capacity window
   - [transient_syscall] transient kernel failures with bounded retry *)

module Engine = Ia32el.Engine

type stats = {
  mutable dispatches_seen : int;
  mutable tos_rotations : int;
  mutable sse_scrambles : int;
  mutable smc_invalidations : int;
  mutable cache_flushes : int;
  mutable capacity_squeezes : int;
  mutable transient_faults : int;
}

type t = {
  seed : int;
  mutable state : int64;
  stats : stats;
  (* eviction-storm window: dispatch count at which to lift the squeeze *)
  mutable squeeze_until : int;
  (* injection rates, as 1-in-N per dispatch (0 disables the point) *)
  rate_tos : int;
  rate_sse : int;
  rate_smc : int;
  rate_flush : int;
  rate_squeeze : int;
  rate_transient : int;
}

(* Default rates are aggressive: the synthetic workloads chain their hot
   loops quickly, so block-boundary events (slow dispatches, indirect
   branches, syscall returns) are scarce — a handful to a few dozen per
   run. High per-event probabilities keep every injection point exercised
   on every run. *)
let create ?(rate_tos = 2) ?(rate_sse = 3) ?(rate_smc = 4) ?(rate_flush = 8)
    ?(rate_squeeze = 16) ?(rate_transient = 2) ~seed () =
  {
    seed;
    (* decorrelate small consecutive seeds *)
    state = Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L;
    stats =
      {
        dispatches_seen = 0;
        tos_rotations = 0;
        sse_scrambles = 0;
        smc_invalidations = 0;
        cache_flushes = 0;
        capacity_squeezes = 0;
        transient_faults = 0;
      };
    squeeze_until = 0;
    rate_tos;
    rate_sse;
    rate_smc;
    rate_flush;
    rate_squeeze;
    rate_transient;
  }

(* splitmix64 *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform draw in [0, n) *)
let rand t n =
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

let chance t n = n > 0 && rand t n = 0

(* Eviction-storm parameters: while squeezed, the Tcache reports full at a
   tiny size, so every translation beyond it triggers a wholesale flush. *)
let squeeze_capacity = 256 (* bundles *)
let squeeze_window = 128 (* dispatches *)

let attach t (engine : Engine.t) =
  (* transient kernel failures, riding the Vos retry/backoff machinery *)
  engine.Engine.vos.Btlib.Vos.transient_fault <-
    Some
      (fun _call ->
        let fail = chance t t.rate_transient in
        if fail then t.stats.transient_faults <- t.stats.transient_faults + 1;
        fail);
  engine.Engine.on_dispatch <-
    Some
      (fun _eip ->
        t.stats.dispatches_seen <- t.stats.dispatches_seen + 1;
        let here = t.stats.dispatches_seen in
        if t.squeeze_until > 0 && here >= t.squeeze_until then begin
          t.squeeze_until <- 0;
          Ipf.Tcache.set_capacity engine.Engine.tcache None
        end;
        if chance t t.rate_tos then begin
          t.stats.tos_rotations <- t.stats.tos_rotations + 1;
          Engine.force_tos_rotation engine ~by:(1 + rand t 7)
        end;
        if chance t t.rate_sse then begin
          t.stats.sse_scrambles <- t.stats.sse_scrambles + 1;
          Engine.force_sse_scramble engine
        end;
        if chance t t.rate_smc then
          t.stats.smc_invalidations <-
            t.stats.smc_invalidations
            + Engine.spurious_smc_invalidate engine ~max:(1 + rand t 2);
        if chance t t.rate_flush then begin
          t.stats.cache_flushes <- t.stats.cache_flushes + 1;
          Engine.force_cache_flush engine
        end;
        if t.squeeze_until = 0 && chance t t.rate_squeeze then begin
          t.stats.capacity_squeezes <- t.stats.capacity_squeezes + 1;
          t.squeeze_until <- here + squeeze_window;
          Ipf.Tcache.set_capacity engine.Engine.tcache (Some squeeze_capacity)
        end)

let stats t = t.stats

let total_injections s =
  s.tos_rotations + s.sse_scrambles + s.smc_invalidations + s.cache_flushes
  + s.capacity_squeezes + s.transient_faults

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>injections over %d dispatches:@,\
    \  tos rotations      %d@,\
    \  sse scrambles      %d@,\
    \  smc invalidations  %d@,\
    \  cache flushes      %d@,\
    \  capacity squeezes  %d@,\
    \  transient syscalls %d@]"
    s.dispatches_seen s.tos_rotations s.sse_scrambles s.smc_invalidations
    s.cache_flushes s.capacity_squeezes s.transient_faults

(* ------------------------------------------------------------------ *)
(* disk faults on persistent translation-cache files                   *)
(* ------------------------------------------------------------------ *)

type disk_fault =
  | Bit_flip of int
  | Truncate of int
  | Partial_write of int
  | Stale_fingerprint
  | Lock_held

let pp_disk_fault ppf = function
  | Bit_flip off -> Fmt.pf ppf "bit-flip@%d" off
  | Truncate n -> Fmt.pf ppf "truncate-last-%d" n
  | Partial_write n -> Fmt.pf ppf "partial-write-%d" n
  | Stale_fingerprint -> Fmt.string ppf "stale-fingerprint"
  | Lock_held -> Fmt.string ppf "lock-held"

let all_disk_faults =
  [ Bit_flip 100; Truncate 7; Partial_write 64; Stale_fingerprint; Lock_held ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let put_be32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

(* The cache header is 16 bytes of magic, a 20-byte body (version, image
   hash, config fingerprint) at 16..35, and the body's CRC-32 at 36..39
   — fixed offsets shared with Persist's writer. *)
let header_len = 40

let apply_disk_fault ~path fault =
  match fault with
  | Lock_held -> (
    try
      let oc =
        open_out_gen [ Open_wronly; Open_creat ] 0o644 (path ^ ".lock")
      in
      close_out oc;
      Ok ()
    with Sys_error m -> Error m)
  | _ -> (
    try
      let s = read_file path in
      let n = String.length s in
      match fault with
      | Lock_held -> assert false
      | Bit_flip off ->
        if n = 0 then Error "empty file"
        else begin
          let b = Bytes.of_string s in
          let i = ((off mod n) + n) mod n in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (off land 7))));
          write_file path (Bytes.to_string b);
          Ok ()
        end
      | Truncate k ->
        write_file path (String.sub s 0 (max 0 (n - k)));
        Ok ()
      | Partial_write k ->
        write_file path (String.sub s 0 (min n k));
        Ok ()
      | Stale_fingerprint ->
        if n < header_len then Error "file shorter than a cache header"
        else begin
          (* flip the image hash but keep the header checksum valid, so
             the load fails on staleness, not on corruption *)
          let b = Bytes.of_string s in
          Bytes.set b 27 (Char.chr (Char.code (Bytes.get b 27) lxor 0xff));
          put_be32 b 36 (Persist.crc32 (Bytes.sub_string b 16 20));
          write_file path (Bytes.to_string b);
          Ok ()
        end
    with Sys_error m -> Error m)
