(* Coverage-steered differential fuzzer for the whole translation stack.

   Generation happens at the Asm DSL level, never at raw bytes: every
   program is well-formed by construction (balanced stacks, depth-tracked
   x87, guarded divisions, bounded loops and string ops, MMX sections
   closed by emms), so a lockstep mismatch is a translator bug, not a
   garbage input. The pools map to the paper's hard cases; a coverage map
   over opcode/operand-shape buckets plus Account event counters steers
   pool selection; findings are minimized by a structural shrinker that
   re-runs lockstep per candidate and localizes with the reproducer
   window. *)

open Ia32
module E = Ia32el.Engine
module L = Ia32el.Lockstep

(* ---------------------------------------------------------------- *)
(* Deterministic PRNG (splitmix64, the Inject stream discipline)     *)
(* ---------------------------------------------------------------- *)

module Rng = struct
  type t = { mutable state : int64 }

  let create seed =
    { state = Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t n =
    if n <= 0 then invalid_arg "Fuzz.Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

  let bool t = Int64.logand (next t) 1L = 1L
  let choose t arr = arr.(int t (Array.length arr))

  let imm32 t =
    match int t 4 with
    | 0 -> int t 16
    | 1 -> int t 256
    | 2 -> int t 65536 - 32768
    | _ -> Int64.to_int (Int64.logand (next t) 0xFFFFFFFFL)
end

(* ---------------------------------------------------------------- *)
(* Program representation                                            *)
(* ---------------------------------------------------------------- *)

type fitem =
  | FI of Insn.insn
  | FLabel of string
  | FJmp of string
  | FJcc of Insn.cond * string
  | FPatch of string * int
  | FMovlab of Insn.reg * string (* mov reg, address-of-label *)

type atom =
  | Block of { pool : string; items : fitem list }
  | Loop of { pool : string; id : int; count : int; body : atom list }

type prog = { seed : int; atoms : atom list }

open Insn

(* Data layout: loop counters live in the first 0x100 bytes of the data
   section (one dword per loop id); the scratch area every generated
   program reads and writes starts right after and ebp points at it for
   the whole run. *)
let scratch_base = Asm.default_data_base + 0x100
let data_items = [ Asm.space 0x4000 ]
let ctr_mem id = mem_abs (Asm.default_data_base + (4 * id))

(* Lowered form shared by the assembler items, the instruction list and
   both printers. *)
type litem =
  | L_i of Insn.insn
  | L_lab of string
  | L_jmp of string
  | L_jcc of Insn.cond * string
  | L_patch of string * int
  | L_movlab of Insn.reg * string

let rec lower_atom acc = function
  | Block b ->
    List.fold_left
      (fun acc it ->
        (match it with
        | FI i -> L_i i
        | FLabel l -> L_lab l
        | FJmp l -> L_jmp l
        | FJcc (c, l) -> L_jcc (c, l)
        | FPatch (l, v) -> L_patch (l, v)
        | FMovlab (r, l) -> L_movlab (r, l))
        :: acc)
      acc b.items
  | Loop l ->
    let lab = Printf.sprintf "loop%d" l.id in
    let acc = L_i (Mov (S32, M (ctr_mem l.id), I l.count)) :: acc in
    let acc = L_lab lab :: acc in
    let acc = List.fold_left lower_atom acc l.body in
    let acc = L_i (Dec (S32, M (ctr_mem l.id))) :: acc in
    L_jcc (Ne, lab) :: acc

let lower p = List.rev (List.fold_left lower_atom [] p.atoms)

let exit_items =
  [
    Asm.i (Mov (S32, R Eax, I 1));
    Asm.i (Mov (S32, R Ebx, I 0));
    Asm.i (Int_n 0x80);
  ]

let to_items p =
  let body =
    List.map
      (function
        | L_i i -> Asm.i i
        | L_lab l -> Asm.label l
        | L_jmp l -> Asm.jmp l
        | L_jcc (c, l) -> Asm.jcc c l
        | L_patch (l, v) ->
          Asm.with_lab l (fun a -> Mov (S32, M (mem_abs (a + 1)), I v))
        | L_movlab (r, l) -> Asm.mov_ri_lab r l)
      (lower p)
  in
  (Asm.label "start" :: body) @ exit_items

let build_image p = Asm.build ~code:(to_items p) ~data:data_items ()

let rec atom_insns = function
  | Block b ->
    List.length
      (List.filter (function FLabel _ -> false | _ -> true) b.items)
  | Loop l -> 3 + List.fold_left (fun a x -> a + atom_insns x) 0 l.body

let insn_count p = List.fold_left (fun a x -> a + atom_insns x) 0 p.atoms

let prog_insns p =
  List.filter_map
    (function
      | L_i i -> Some i
      | L_lab _ -> None
      | L_jmp _ -> Some (Jmp 0x401000)
      | L_jcc (c, _) -> Some (Jcc (c, 0x401000))
      | L_patch (_, v) -> Some (Mov (S32, M (mem_abs 0x401001), I v))
      | L_movlab (r, _) -> Some (Mov (S32, R r, I 0x401000)))
    (lower p)

let pools p =
  let tbl = Hashtbl.create 8 in
  let rec go = function
    | Block b -> Hashtbl.replace tbl b.pool ()
    | Loop l ->
      Hashtbl.replace tbl l.pool ();
      List.iter go l.body
  in
  List.iter go p.atoms;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(* ---------------------------------------------------------------- *)
(* Coverage                                                          *)
(* ---------------------------------------------------------------- *)

module Coverage = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 256

  let note t b =
    match Hashtbl.find_opt t b with
    | Some r ->
      incr r;
      false
    | None ->
      Hashtbl.add t b (ref 1);
      true

  let covered t b = Hashtbl.mem t b
  let cardinal t = Hashtbl.length t

  let to_list t =
    List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t [])
end

let opcode_name i =
  let s = Insn.to_string i in
  match String.index_opt s ' ' with Some k -> String.sub s 0 k | None -> s

let operand_shapes i =
  let op = function R _ -> "r" | M _ -> "m" | I _ -> "i" in
  match i with
  | Alu (_, _, a, b) | Test (_, a, b) | Mov (_, a, b) -> op a ^ op b
  | Movzx (_, _, s) | Movsx (_, _, s) | Imul_rr (_, s) | Cmovcc (_, _, s) ->
    "r" ^ op s
  | Imul_rri (_, s, _) -> "r" ^ op s ^ "i"
  | Lea _ -> "rm"
  | Shift (_, _, d, _) | Setcc (_, d) -> op d
  | Shld (d, _, _) | Shrd (d, _, _) | Xchg (_, d, _) -> op d ^ "r"
  | Inc (_, d) | Dec (_, d) | Neg (_, d) | Not (_, d)
  | Mul1 (_, d) | Imul1 (_, d) | Div (_, d) | Idiv (_, d) ->
    op d
  | Push s -> op s
  | Pop d -> op d
  | Jmp_ind s | Call_ind s -> op s
  | _ -> ""

let mem_bucket_of_ref (m, w, store) =
  let dir = if store then "st" else "ld" in
  let base = Printf.sprintf "mem:%s%d" dir w in
  let sib = match m.index with Some _ -> [ "mem:sib" ] | None -> [] in
  let abs =
    match (m.base, m.index) with
    | None, None ->
      let a = m.disp in
      let mis = if w > 1 && a mod w <> 0 then [ "mem:misaligned" ] else [] in
      let straddle =
        if (a land 0xFFF) + w > 0x1000 then [ "mem:straddle" ] else []
      in
      mis @ straddle
    | _ -> []
  in
  (base :: sib) @ abs

let static_buckets i =
  let name = opcode_name i in
  let shapes = operand_shapes i in
  let shape_b = if shapes = "" then [] else [ "sh:" ^ name ^ ":" ^ shapes ] in
  (("op:" ^ name) :: shape_b)
  @ List.concat_map mem_bucket_of_ref (Insn.mem_refs i)

(* ---------------------------------------------------------------- *)
(* Printers                                                          *)
(* ---------------------------------------------------------------- *)

let sreg = function
  | Eax -> "Eax" | Ecx -> "Ecx" | Edx -> "Edx" | Ebx -> "Ebx"
  | Esp -> "Esp" | Ebp -> "Ebp" | Esi -> "Esi" | Edi -> "Edi"

let ssize = function S8 -> "S8" | S16 -> "S16" | S32 -> "S32"

let scond = function
  | O -> "O" | No -> "No" | B -> "B" | Ae -> "Ae" | E -> "E" | Ne -> "Ne"
  | Be -> "Be" | A -> "A" | S -> "S" | Ns -> "Ns" | P -> "P" | Np -> "Np"
  | L -> "L" | Ge -> "Ge" | Le -> "Le" | G -> "G"

let salu = function
  | Add -> "Add" | Or -> "Or" | Adc -> "Adc" | Sbb -> "Sbb"
  | And -> "And" | Sub -> "Sub" | Xor -> "Xor" | Cmp -> "Cmp"

let sshift = function
  | Shl -> "Shl" | Shr -> "Shr" | Sar -> "Sar" | Rol -> "Rol" | Ror -> "Ror"

let sfop = function
  | FAdd -> "FAdd" | FSub -> "FSub" | FSubr -> "FSubr"
  | FMul -> "FMul" | FDiv -> "FDiv" | FDivr -> "FDivr"

let sfsize = function F32 -> "F32" | F64 -> "F64"
let sisize = function I16 -> "I16" | I32 -> "I32"

let srep = function
  | No_rep -> "No_rep" | Rep -> "Rep" | Repe -> "Repe" | Repne -> "Repne"

let ssseop = function
  | SAdd -> "SAdd" | SSub -> "SSub" | SMul -> "SMul"
  | SDiv -> "SDiv" | SMin -> "SMin" | SMax -> "SMax"

let ssefmt = function
  | Packed_single -> "Packed_single"
  | Packed_double -> "Packed_double"
  | Scalar_single -> "Scalar_single"
  | Scalar_double -> "Scalar_double"
  | Packed_int -> "Packed_int"

let sint n =
  if n < 0 then Printf.sprintf "(%d)" n
  else if n < 10 then string_of_int n
  else Printf.sprintf "0x%x" n

let smem m =
  match (m.base, m.index) with
  | None, None -> Printf.sprintf "(mem_abs %s)" (sint m.disp)
  | Some b, None when m.disp = 0 -> Printf.sprintf "(mem_b %s)" (sreg b)
  | Some b, None -> Printf.sprintf "(mem_bd %s %s)" (sreg b) (sint m.disp)
  | Some b, Some (x, sc) ->
    Printf.sprintf "(mem_full %s %s %d %s)" (sreg b) (sreg x) sc (sint m.disp)
  | None, Some (x, sc) ->
    Printf.sprintf "{ base = None; index = Some (%s, %d); disp = %s }" (sreg x)
      sc (sint m.disp)

let soper = function
  | R r -> Printf.sprintf "(R %s)" (sreg r)
  | M m -> Printf.sprintf "(M %s)" (smem m)
  | I n -> Printf.sprintf "(I %s)" (sint n)

let samount = function
  | Amt_imm n -> Printf.sprintf "(Amt_imm %d)" n
  | Amt_cl -> "Amt_cl"

let smmx_rm = function
  | MM k -> Printf.sprintf "(MM %d)" k
  | MMem m -> Printf.sprintf "(MMem %s)" (smem m)

let sxmm_rm = function
  | XM k -> Printf.sprintf "(XM %d)" k
  | XMem m -> Printf.sprintf "(XMem %s)" (smem m)

let sfp = function
  | Fld_st k -> Printf.sprintf "Fld_st %d" k
  | Fld_m (fs, m) -> Printf.sprintf "Fld_m (%s, %s)" (sfsize fs) (smem m)
  | Fld1 -> "Fld1"
  | Fldz -> "Fldz"
  | Fldpi -> "Fldpi"
  | Fst_st (k, p) -> Printf.sprintf "Fst_st (%d, %b)" k p
  | Fst_m (fs, m, p) ->
    Printf.sprintf "Fst_m (%s, %s, %b)" (sfsize fs) (smem m) p
  | Fild (is, m) -> Printf.sprintf "Fild (%s, %s)" (sisize is) (smem m)
  | Fist_m (is, m, p) ->
    Printf.sprintf "Fist_m (%s, %s, %b)" (sisize is) (smem m) p
  | Fop_st0_st (op, k) -> Printf.sprintf "Fop_st0_st (%s, %d)" (sfop op) k
  | Fop_st_st0 (op, k, p) ->
    Printf.sprintf "Fop_st_st0 (%s, %d, %b)" (sfop op) k p
  | Fop_m (op, fs, m) ->
    Printf.sprintf "Fop_m (%s, %s, %s)" (sfop op) (sfsize fs) (smem m)
  | Fchs -> "Fchs"
  | Fabs -> "Fabs"
  | Fsqrt -> "Fsqrt"
  | Frndint -> "Frndint"
  | Fcom_st (k, p) -> Printf.sprintf "Fcom_st (%d, %d)" k p
  | Fcom_m (fs, m, p) ->
    Printf.sprintf "Fcom_m (%s, %s, %d)" (sfsize fs) (smem m) p
  | Fnstsw_ax -> "Fnstsw_ax"
  | Fxch k -> Printf.sprintf "Fxch %d" k
  | Ffree k -> Printf.sprintf "Ffree %d" k
  | Fincstp -> "Fincstp"
  | Fdecstp -> "Fdecstp"

let smmx = function
  | Movd_to_mm (k, o) -> Printf.sprintf "Movd_to_mm (%d, %s)" k (soper o)
  | Movd_from_mm (o, k) -> Printf.sprintf "Movd_from_mm (%s, %d)" (soper o) k
  | Movq_to_mm (k, s) -> Printf.sprintf "Movq_to_mm (%d, %s)" k (smmx_rm s)
  | Movq_from_mm (s, k) -> Printf.sprintf "Movq_from_mm (%s, %d)" (smmx_rm s) k
  | Padd (w, k, s) -> Printf.sprintf "Padd (%d, %d, %s)" w k (smmx_rm s)
  | Psub (w, k, s) -> Printf.sprintf "Psub (%d, %d, %s)" w k (smmx_rm s)
  | Pmullw (k, s) -> Printf.sprintf "Pmullw (%d, %s)" k (smmx_rm s)
  | Pand (k, s) -> Printf.sprintf "Pand (%d, %s)" k (smmx_rm s)
  | Por (k, s) -> Printf.sprintf "Por (%d, %s)" k (smmx_rm s)
  | Pxor (k, s) -> Printf.sprintf "Pxor (%d, %s)" k (smmx_rm s)
  | Pcmpeq (w, k, s) -> Printf.sprintf "Pcmpeq (%d, %d, %s)" w k (smmx_rm s)
  | Psll (w, k, n) -> Printf.sprintf "Psll (%d, %d, %d)" w k n
  | Psrl (w, k, n) -> Printf.sprintf "Psrl (%d, %d, %d)" w k n
  | Emms -> "Emms"

let ssse = function
  | Movaps (d, s) -> Printf.sprintf "Movaps (%s, %s)" (sxmm_rm d) (sxmm_rm s)
  | Movups (d, s) -> Printf.sprintf "Movups (%s, %s)" (sxmm_rm d) (sxmm_rm s)
  | Movss (d, s) -> Printf.sprintf "Movss (%s, %s)" (sxmm_rm d) (sxmm_rm s)
  | Movsd_x (d, s) -> Printf.sprintf "Movsd_x (%s, %s)" (sxmm_rm d) (sxmm_rm s)
  | Sse_arith (op, fmt, d, s) ->
    Printf.sprintf "Sse_arith (%s, %s, %d, %s)" (ssseop op) (ssefmt fmt) d
      (sxmm_rm s)
  | Sqrtps (d, s) -> Printf.sprintf "Sqrtps (%d, %s)" d (sxmm_rm s)
  | Andps (d, s) -> Printf.sprintf "Andps (%d, %s)" d (sxmm_rm s)
  | Orps (d, s) -> Printf.sprintf "Orps (%d, %s)" d (sxmm_rm s)
  | Xorps (d, s) -> Printf.sprintf "Xorps (%d, %s)" d (sxmm_rm s)
  | Paddd_x (d, s) -> Printf.sprintf "Paddd_x (%d, %s)" d (sxmm_rm s)
  | Psubd_x (d, s) -> Printf.sprintf "Psubd_x (%d, %s)" d (sxmm_rm s)
  | Ucomiss (d, s) -> Printf.sprintf "Ucomiss (%d, %s)" d (sxmm_rm s)
  | Cvtsi2ss (d, o) -> Printf.sprintf "Cvtsi2ss (%d, %s)" d (soper o)
  | Cvttss2si (r, s) -> Printf.sprintf "Cvttss2si (%s, %s)" (sreg r) (sxmm_rm s)
  | Cvtss2sd (d, s) -> Printf.sprintf "Cvtss2sd (%d, %s)" d (sxmm_rm s)
  | Cvtsd2ss (d, s) -> Printf.sprintf "Cvtsd2ss (%d, %s)" d (sxmm_rm s)

let soi = function
  | Alu (op, s, d, src) ->
    Printf.sprintf "Alu (%s, %s, %s, %s)" (salu op) (ssize s) (soper d)
      (soper src)
  | Test (s, d, src) ->
    Printf.sprintf "Test (%s, %s, %s)" (ssize s) (soper d) (soper src)
  | Mov (s, d, src) ->
    Printf.sprintf "Mov (%s, %s, %s)" (ssize s) (soper d) (soper src)
  | Movzx (s, r, o) ->
    Printf.sprintf "Movzx (%s, %s, %s)" (ssize s) (sreg r) (soper o)
  | Movsx (s, r, o) ->
    Printf.sprintf "Movsx (%s, %s, %s)" (ssize s) (sreg r) (soper o)
  | Lea (r, m) -> Printf.sprintf "Lea (%s, %s)" (sreg r) (smem m)
  | Shift (sh, s, d, a) ->
    Printf.sprintf "Shift (%s, %s, %s, %s)" (sshift sh) (ssize s) (soper d)
      (samount a)
  | Shld (d, r, a) ->
    Printf.sprintf "Shld (%s, %s, %s)" (soper d) (sreg r) (samount a)
  | Shrd (d, r, a) ->
    Printf.sprintf "Shrd (%s, %s, %s)" (soper d) (sreg r) (samount a)
  | Inc (s, d) -> Printf.sprintf "Inc (%s, %s)" (ssize s) (soper d)
  | Dec (s, d) -> Printf.sprintf "Dec (%s, %s)" (ssize s) (soper d)
  | Neg (s, d) -> Printf.sprintf "Neg (%s, %s)" (ssize s) (soper d)
  | Not (s, d) -> Printf.sprintf "Not (%s, %s)" (ssize s) (soper d)
  | Imul_rr (r, o) -> Printf.sprintf "Imul_rr (%s, %s)" (sreg r) (soper o)
  | Imul_rri (r, o, v) ->
    Printf.sprintf "Imul_rri (%s, %s, %s)" (sreg r) (soper o) (sint v)
  | Mul1 (s, o) -> Printf.sprintf "Mul1 (%s, %s)" (ssize s) (soper o)
  | Imul1 (s, o) -> Printf.sprintf "Imul1 (%s, %s)" (ssize s) (soper o)
  | Div (s, o) -> Printf.sprintf "Div (%s, %s)" (ssize s) (soper o)
  | Idiv (s, o) -> Printf.sprintf "Idiv (%s, %s)" (ssize s) (soper o)
  | Cdq -> "Cdq"
  | Cwde -> "Cwde"
  | Xchg (s, o, r) ->
    Printf.sprintf "Xchg (%s, %s, %s)" (ssize s) (soper o) (sreg r)
  | Push o -> Printf.sprintf "Push %s" (soper o)
  | Pop o -> Printf.sprintf "Pop %s" (soper o)
  | Pushfd -> "Pushfd"
  | Popfd -> "Popfd"
  | Jmp t -> Printf.sprintf "Jmp %s" (sint t)
  | Jcc (c, t) -> Printf.sprintf "Jcc (%s, %s)" (scond c) (sint t)
  | Call t -> Printf.sprintf "Call %s" (sint t)
  | Jmp_ind o -> Printf.sprintf "Jmp_ind %s" (soper o)
  | Call_ind o -> Printf.sprintf "Call_ind %s" (soper o)
  | Ret n -> Printf.sprintf "Ret %s" (sint n)
  | Setcc (c, o) -> Printf.sprintf "Setcc (%s, %s)" (scond c) (soper o)
  | Cmovcc (c, r, o) ->
    Printf.sprintf "Cmovcc (%s, %s, %s)" (scond c) (sreg r) (soper o)
  | Movs (s, r) -> Printf.sprintf "Movs (%s, %s)" (ssize s) (srep r)
  | Stos (s, r) -> Printf.sprintf "Stos (%s, %s)" (ssize s) (srep r)
  | Lods (s, r) -> Printf.sprintf "Lods (%s, %s)" (ssize s) (srep r)
  | Scas (s, r) -> Printf.sprintf "Scas (%s, %s)" (ssize s) (srep r)
  | Cld -> "Cld"
  | Std -> "Std"
  | Int_n n -> Printf.sprintf "Int_n %s" (sint n)
  | Hlt -> "Hlt"
  | Ud2 -> "Ud2"
  | Nop -> "Nop"
  | Fp f -> Printf.sprintf "Fp (%s)" (sfp f)
  | Mmx m -> Printf.sprintf "Mmx (%s)" (smmx m)
  | Sse s -> Printf.sprintf "Sse (%s)" (ssse s)

let pp_prog_asm ppf p =
  Fmt.pf ppf "@[<v>";
  List.iter
    (function
      | L_i i -> Fmt.pf ppf "        %s@," (Insn.to_string i)
      | L_lab l -> Fmt.pf ppf "%s:@," l
      | L_jmp l -> Fmt.pf ppf "        jmp %s@," l
      | L_jcc (c, l) -> Fmt.pf ppf "        j%s %s@," (Insn.cond_name c) l
      | L_patch (l, v) ->
        Fmt.pf ppf "        mov dword [%s+1], %#x   ; smc patch@," l v
      | L_movlab (r, l) ->
        Fmt.pf ppf "        mov %s, %s   ; label address@,"
          (Insn.reg_name r) l)
    (lower p);
  Fmt.pf ppf "@]"

let pp_prog_ocaml ppf p =
  Fmt.pf ppf "@[<v>(* fuzz reproducer: program seed %d *)@," p.seed;
  Fmt.pf ppf "let code =@,  Ia32.Asm.[@,    label \"start\";@,";
  List.iter
    (function
      | L_i i -> Fmt.pf ppf "    i Ia32.Insn.(%s);@," (soi i)
      | L_lab l -> Fmt.pf ppf "    label %S;@," l
      | L_jmp l -> Fmt.pf ppf "    jmp %S;@," l
      | L_jcc (c, l) -> Fmt.pf ppf "    jcc Ia32.Insn.%s %S;@," (scond c) l
      | L_patch (l, v) ->
        Fmt.pf ppf
          "    with_lab %S (fun a -> Ia32.Insn.(Mov (S32, M (mem_abs (a + \
           1)), I %s)));@,"
          l (sint v)
      | L_movlab (r, l) -> Fmt.pf ppf "    mov_ri_lab Ia32.Insn.%s %S;@," (sreg r) l)
    (lower p);
  Fmt.pf ppf "    i Ia32.Insn.(Mov (S32, R Eax, I 1));@,";
  Fmt.pf ppf "    i Ia32.Insn.(Mov (S32, R Ebx, I 0));@,";
  Fmt.pf ppf "    i Ia32.Insn.(Int_n 0x80);@,  ]@,@,";
  Fmt.pf ppf "let data = Ia32.Asm.[ space 0x4000 ]@]"

(* ---------------------------------------------------------------- *)
(* Generation                                                        *)
(* ---------------------------------------------------------------- *)

(* Invariants every pool preserves: ebp = scratch_base, esi in [0,16)
   (index register for scaled addressing), esp balanced, x87 stack
   depth-neutral, MMX sections closed with emms. Freely clobbered:
   eax, ebx, ecx, edx, edi, flags, scratch memory. *)

type gctx = {
  rng : Rng.t;
  mutable next_loop : int;
  mutable next_label : int;
  mutable next_worker : int;
}

let fresh_label c prefix =
  c.next_label <- c.next_label + 1;
  Printf.sprintf "%s%d" prefix c.next_label

let fresh_loop c =
  let id = c.next_loop in
  c.next_loop <- id + 1;
  id

let wregs = [| Eax; Ebx; Ecx; Edx; Edi |]
let sregs = [| Eax; Ecx; Edx; Ebx; Esi; Edi |]
let alu_ops = [| Add; Or; Adc; Sbb; And; Sub; Xor; Cmp |]
let fops = [| FAdd; FSub; FSubr; FMul; FDiv; FDivr |]

let all_conds =
  [| O; No; B; Ae; E; Ne; Be; A; S; Ns; P; Np; L; Ge; Le; G |]

let fi i = FI i
let block pool items = Block { pool; items }
let imm rng = Word.mask32 (Rng.imm32 rng)

let imm_for rng = function
  | S8 -> Rng.int rng 0x100
  | S16 -> Rng.int rng 0x10000
  | S32 -> imm rng

(* Scratch offsets. The 8-aligned generator keeps wide FP/MMX/SSE
   accesses in bounds and mostly aligned; any_off exercises arbitrary
   alignment; the straddle offsets land a 4..16-byte access across the
   data section's interior page boundaries (scratch_base is page_base +
   0x100, so offset 0xEFE sits at page offset 0xFFE). *)
let aligned_off rng = 8 * Rng.int rng 0x6E0
let any_off rng = Rng.int rng 0x3700
let straddle_offs = [| 0xEFB; 0xEFE; 0x1EFE; 0x2EFD |]

let smem ?(off = aligned_off) rng =
  let o = off rng in
  match Rng.int rng 3 with
  | 0 -> mem_abs (scratch_base + o)
  | 1 -> mem_bd Ebp o
  | _ -> mem_full Ebp Esi 4 o

let prologue c =
  let rng = c.rng in
  let items =
    [
      fi (Mov (S32, R Ebp, I scratch_base));
      fi (Mov (S32, R Esi, I (Rng.int rng 16)));
    ]
    @ List.map
        (fun r -> fi (Mov (S32, R r, I (imm rng))))
        [ Eax; Ebx; Ecx; Edx; Edi ]
    @ List.init 4 (fun k ->
          fi (Mov (S32, M (mem_bd Ebp (0x40 * k)), I (imm rng))))
  in
  block "prologue" items

let pool_alu c =
  let rng = c.rng in
  let n = 2 + Rng.int rng 5 in
  let one _ =
    match Rng.int rng 8 with
    | 0 | 1 ->
      let op = Rng.choose rng alu_ops and d = Rng.choose rng wregs in
      (match Rng.int rng 3 with
      | 0 -> fi (Alu (op, S32, R d, R (Rng.choose rng sregs)))
      | 1 -> fi (Alu (op, S32, R d, I (imm rng)))
      | _ -> fi (Alu (op, S32, R d, M (smem rng))))
    | 2 ->
      let sz = Rng.choose rng [| S8; S16; S32 |] in
      fi
        (Alu
           ( Rng.choose rng alu_ops, sz, R (Rng.choose rng wregs),
             I (imm_for rng sz) ))
    | 3 ->
      fi
        (Shift
           ( Rng.choose rng [| Shl; Shr; Sar; Rol; Ror |], S32,
             R (Rng.choose rng wregs), Amt_imm (1 + Rng.int rng 31) ))
    | 4 -> fi (Test (S32, R (Rng.choose rng wregs), R (Rng.choose rng sregs)))
    | 5 ->
      let d =
        if Rng.bool rng then R (Rng.choose rng wregs) else M (smem rng)
      in
      (match Rng.int rng 4 with
      | 0 -> fi (Inc (S32, d))
      | 1 -> fi (Dec (S32, d))
      | 2 -> fi (Neg (S32, d))
      | _ -> fi (Not (S32, d)))
    | 6 ->
      if Rng.bool rng then
        fi (Imul_rr (Rng.choose rng wregs, R (Rng.choose rng sregs)))
      else
        fi
          (Imul_rri
             ( Rng.choose rng wregs, R (Rng.choose rng sregs),
               Rng.int rng 0x1000 ))
    | _ ->
      let mk = if Rng.bool rng then fun d r a -> Shld (d, r, a)
               else fun d r a -> Shrd (d, r, a) in
      fi
        (mk (R (Rng.choose rng wregs)) (Rng.choose rng sregs)
           (Amt_imm (1 + Rng.int rng 31)))
  in
  let cc = Rng.choose rng all_conds in
  let consumer =
    match Rng.int rng 4 with
    | 0 -> [ fi (Setcc (cc, R (Rng.choose rng wregs))) ]
    | 1 -> [ fi (Cmovcc (cc, Rng.choose rng wregs, R (Rng.choose rng sregs))) ]
    | 2 -> [ fi (Alu (Adc, S32, R (Rng.choose rng wregs), I (Rng.int rng 256))) ]
    | _ -> [ fi Pushfd; fi Popfd ]
  in
  [ block "alu" (List.init n one @ consumer) ]

let pool_mem c =
  let rng = c.rng in
  let n = 2 + Rng.int rng 4 in
  let one _ =
    match Rng.int rng 8 with
    | 0 -> fi (Mov (S32, M (smem rng), R (Rng.choose rng sregs)))
    | 1 -> fi (Mov (S32, R (Rng.choose rng wregs), M (smem ~off:any_off rng)))
    | 2 ->
      let sz = if Rng.bool rng then S8 else S16 in
      if Rng.bool rng then
        fi (Movzx (sz, Rng.choose rng wregs, M (smem ~off:any_off rng)))
      else fi (Movsx (sz, Rng.choose rng wregs, M (smem ~off:any_off rng)))
    | 3 ->
      fi
        (Lea
           ( Rng.choose rng wregs,
             mem_full Ebp Esi (Rng.choose rng [| 1; 2; 4; 8 |]) (Rng.int rng 64)
           ))
    | 4 -> fi (Xchg (S32, M (smem rng), Rng.choose rng wregs))
    | 5 ->
      fi
        (Mov
           ( S32, M (mem_abs (scratch_base + Rng.choose rng straddle_offs)),
             R (Rng.choose rng sregs) ))
    | 6 -> fi (Mov (S16, M (smem ~off:any_off rng), I (Rng.int rng 0x10000)))
    | _ ->
      fi
        (Mov
           ( S32, R (Rng.choose rng wregs),
             M (mem_abs (scratch_base + Rng.choose rng straddle_offs)) ))
  in
  let pushpop =
    if Rng.bool rng then begin
      let k = 1 + Rng.int rng 3 in
      List.init k (fun _ ->
          match Rng.int rng 3 with
          | 0 -> fi (Push (R (Rng.choose rng sregs)))
          | 1 -> fi (Push (I (imm rng)))
          | _ -> fi (Push (M (smem rng))))
      @ List.init k (fun j ->
            if j = 0 && Rng.bool rng then fi (Pop (M (smem rng)))
            else fi (Pop (R (Rng.choose rng wregs))))
    end
    else []
  in
  [ block "mem" (List.init n one @ pushpop) ]

let pool_muldiv c =
  let rng = c.rng in
  let items =
    match Rng.int rng 5 with
    | 0 ->
      (* unsigned 32-bit: edx zeroed, divisor >= 1 *)
      [
        fi (Mov (S32, R Ecx, I (1 + Rng.int rng 1000)));
        fi (Alu (Xor, S32, R Edx, R Edx));
        fi (Div (S32, R Ecx));
      ]
    | 1 ->
      (* signed 32-bit: clamp eax non-negative so the quotient fits *)
      [
        fi (Alu (And, S32, R Eax, I 0x7FFFFFFF));
        fi Cdq;
        fi (Mov (S32, R Ecx, I (1 + Rng.int rng 126)));
        fi (Idiv (S32, R Ecx));
      ]
    | 2 ->
      (* 8-bit: ax <= 0xFF so the quotient fits any divisor >= 1 *)
      [
        fi (Alu (And, S32, R Eax, I 0xFF));
        fi (Mov (S32, R Ecx, I (1 + Rng.int rng 100)));
        fi (Div (S8, R Ecx));
      ]
    | 3 ->
      [
        fi (Alu (And, S32, R Eax, I 0xFFFF));
        fi (Alu (Xor, S32, R Edx, R Edx));
        fi (Mov (S32, R Ecx, I (1 + Rng.int rng 10000)));
        fi (Div (S16, R Ecx));
      ]
    | _ ->
      let mk =
        if Rng.bool rng then fun s o -> Mul1 (s, o) else fun s o -> Imul1 (s, o)
      in
      [ fi (mk S32 (R (Rng.choose rng sregs))); fi Cdq ]
  in
  [ block "muldiv" items ]

(* x87: depth-tracked churn between balanced pushes and pops, exercising
   the TOS/TAG speculation boundary. *)
let x87_push rng depth =
  match Rng.int rng (if depth > 0 then 6 else 5) with
  | 0 -> Fld1
  | 1 -> Fldz
  | 2 -> Fldpi
  | 3 -> Fld_m ((if Rng.bool rng then F32 else F64), smem rng)
  | 4 -> Fild ((if Rng.bool rng then I16 else I32), smem rng)
  | _ -> Fld_st (Rng.int rng depth)

let x87_churn rng depth =
  match Rng.int rng 12 with
  | 0 when depth >= 2 -> [ Fxch (1 + Rng.int rng (depth - 1)) ]
  | 1 when depth >= 2 ->
    [ Fop_st0_st (Rng.choose rng fops, 1 + Rng.int rng (depth - 1)) ]
  | 2 when depth >= 2 ->
    [ Fop_st_st0 (Rng.choose rng fops, 1 + Rng.int rng (depth - 1), false) ]
  | 3 ->
    [ Fop_m (Rng.choose rng fops, (if Rng.bool rng then F32 else F64), smem rng) ]
  | 4 -> [ Fchs ]
  | 5 -> [ Fabs ]
  | 6 -> [ Fabs; Fsqrt ]
  | 7 -> [ Frndint ]
  | 8 -> [ Fcom_st (Rng.int rng depth, 0) ]
  | 9 -> [ Fcom_m ((if Rng.bool rng then F32 else F64), smem rng, 0) ]
  | 10 -> [ Fnstsw_ax ]
  | _ -> [ Fincstp; Fdecstp ]

let x87_pop rng remaining =
  match Rng.int rng 4 with
  | 0 -> Fst_m ((if Rng.bool rng then F32 else F64), smem ~off:any_off rng, true)
  | 1 -> Fist_m ((if Rng.bool rng then I16 else I32), smem rng, true)
  | 2 when remaining >= 2 -> Fop_st_st0 (Rng.choose rng fops, 1, true)
  | _ -> Fst_st (0, true)

let pool_x87 c =
  let rng = c.rng in
  let d = 1 + Rng.int rng 4 in
  let pushes = List.init d (fun k -> fi (Fp (x87_push rng k))) in
  let churns =
    List.concat
      (List.init
         (1 + Rng.int rng 4)
         (fun _ -> List.map (fun f -> fi (Fp f)) (x87_churn rng d)))
  in
  let pops = List.init d (fun k -> fi (Fp (x87_pop rng (d - k)))) in
  [ block "x87" (pushes @ churns @ pops) ]

(* x87 work split around a loop: the loop body runs with a non-zero TOS
   established outside it, the hard case for FP stack speculation. *)
let pool_x87_loop c =
  let rng = c.rng in
  let d = 1 + Rng.int rng 2 in
  let pushes =
    List.init d (fun _ -> fi (Fp (if Rng.bool rng then Fld1 else Fldpi)))
  in
  let body_items =
    List.concat
      (List.init 2 (fun _ -> List.map (fun f -> fi (Fp f)) (x87_churn rng d)))
  in
  let pops = List.init d (fun k -> fi (Fp (x87_pop rng (d - k)))) in
  [
    block "x87_loop" pushes;
    Loop
      {
        pool = "x87_loop";
        id = fresh_loop c;
        count = 2 + Rng.int rng 6;
        body = [ block "x87_loop" body_items ];
      };
    block "x87_loop" pops;
  ]

let mmx_src rng = if Rng.bool rng then MM (Rng.int rng 8) else MMem (smem rng)

let pool_mmx c =
  let rng = c.rng in
  let n = 2 + Rng.int rng 4 in
  let one _ =
    match Rng.int rng 9 with
    | 0 ->
      Movd_to_mm
        ( Rng.int rng 8,
          if Rng.bool rng then R (Rng.choose rng sregs) else M (smem rng) )
    | 1 -> Movq_to_mm (Rng.int rng 8, mmx_src rng)
    | 2 -> Padd (Rng.choose rng [| 1; 2; 4; 8 |], Rng.int rng 8, mmx_src rng)
    | 3 -> Psub (Rng.choose rng [| 1; 2; 4; 8 |], Rng.int rng 8, mmx_src rng)
    | 4 -> Pmullw (Rng.int rng 8, mmx_src rng)
    | 5 -> (
      match Rng.int rng 3 with
      | 0 -> Pand (Rng.int rng 8, mmx_src rng)
      | 1 -> Por (Rng.int rng 8, mmx_src rng)
      | _ -> Pxor (Rng.int rng 8, mmx_src rng))
    | 6 -> Pcmpeq (Rng.choose rng [| 1; 2; 4 |], Rng.int rng 8, mmx_src rng)
    | 7 -> Psll (Rng.choose rng [| 2; 4; 8 |], Rng.int rng 8, Rng.int rng 64)
    | _ -> Psrl (Rng.choose rng [| 2; 4; 8 |], Rng.int rng 8, Rng.int rng 64)
  in
  let stores =
    if Rng.bool rng then
      [ fi (Mmx (Movq_from_mm (MMem (smem rng), Rng.int rng 8))) ]
    else [ fi (Mmx (Movd_from_mm (M (smem rng), Rng.int rng 8))) ]
  in
  (* emms is mandatory: MMX marks the whole stack Valid, so a later x87
     push would overflow-fault in a program that is meant to be clean *)
  [ block "mmx" (List.map (fun m -> fi (Mmx m)) (List.init n one) @ stores @ [ fi (Mmx Emms) ]) ]

(* Alternating x87 and MMX sections: every flip crosses the FP/MMX mode
   speculation boundary (paper 4.4). *)
let pool_mmx_fp_flip c =
  let rng = c.rng in
  let x87_bit () =
    [
      fi (Fp (x87_push rng 0));
      fi (Fp (Fop_m (Rng.choose rng fops, F32, smem rng)));
      fi (Fp (Fst_m (F64, smem rng, true)));
    ]
  in
  let mmx_bit =
    [
      fi (Mmx (Movq_to_mm (Rng.int rng 8, MMem (smem rng))));
      fi (Mmx (Padd (2, Rng.int rng 8, mmx_src rng)));
      fi (Mmx Emms);
    ]
  in
  [ block "mmx_fp_flip" (x87_bit () @ mmx_bit @ x87_bit ()) ]

let xmm_src rng = if Rng.bool rng then XM (Rng.int rng 8) else XMem (smem rng)

let pool_sse c =
  let rng = c.rng in
  let init =
    [
      fi (Sse (Movups (XM (Rng.int rng 8), XMem (smem rng))));
      fi (Sse (Cvtsi2ss (Rng.int rng 8, R (Rng.choose rng sregs))));
    ]
  in
  let n = 2 + Rng.int rng 4 in
  let one _ =
    match Rng.int rng 10 with
    | 0 ->
      Sse_arith
        ( Rng.choose rng [| SAdd; SSub; SMul; SDiv; SMin; SMax |],
          Rng.choose rng
            [| Packed_single; Packed_double; Scalar_single; Scalar_double |],
          Rng.int rng 8, xmm_src rng )
    | 1 -> (
      match Rng.int rng 3 with
      | 0 -> Andps (Rng.int rng 8, xmm_src rng)
      | 1 -> Orps (Rng.int rng 8, xmm_src rng)
      | _ -> Xorps (Rng.int rng 8, xmm_src rng))
    | 2 ->
      if Rng.bool rng then Paddd_x (Rng.int rng 8, xmm_src rng)
      else Psubd_x (Rng.int rng 8, xmm_src rng)
    | 3 -> Sqrtps (Rng.int rng 8, xmm_src rng)
    | 4 -> Movaps (XM (Rng.int rng 8), XM (Rng.int rng 8))
    | 5 -> Movss (XM (Rng.int rng 8), xmm_src rng)
    | 6 ->
      if Rng.bool rng then Cvtss2sd (Rng.int rng 8, xmm_src rng)
      else Cvtsd2ss (Rng.int rng 8, xmm_src rng)
    | 7 -> Ucomiss (Rng.int rng 8, xmm_src rng)
    | 8 -> Cvttss2si (Rng.choose rng wregs, xmm_src rng)
    | _ -> Movsd_x (XM (Rng.int rng 8), XM (Rng.int rng 8))
  in
  let stores =
    if Rng.bool rng then
      [ fi (Sse (Movups (XMem (smem rng), XM (Rng.int rng 8)))) ]
    else [ fi (Sse (Movss (XMem (smem rng), XM (Rng.int rng 8)))) ]
  in
  [ block "sse" (init @ List.map (fun s -> fi (Sse s)) (List.init n one) @ stores) ]

let pool_string c =
  let rng = c.rng in
  let count = 1 + Rng.int rng 24 in
  let sz = Rng.choose rng [| S8; S16; S32 |] in
  let down = Rng.bool rng in
  let src = scratch_base + 0x2000 + (if down then 0x400 else 0) + Rng.int rng 0x80 in
  let dst = scratch_base + 0x2800 + (if down then 0x400 else 0) + Rng.int rng 0x80 in
  let op =
    match Rng.int rng 4 with
    | 0 -> Movs (sz, Rep)
    | 1 -> Stos (sz, Rep)
    | 2 -> Lods (sz, No_rep)
    | _ -> Scas (sz, if Rng.bool rng then Repe else Repne)
  in
  let items =
    [
      fi (Mov (S32, R Esi, I src));
      fi (Mov (S32, R Edi, I dst));
      fi (Mov (S32, R Ecx, I count));
      fi (Mov (S32, R Eax, I (imm rng)));
    ]
    @ (if down then [ fi Std ] else [ fi Cld ])
    @ [ fi op; fi Cld; fi (Mov (S32, R Esi, I (Rng.int rng 16))) ]
  in
  [ block "string" items ]

let pool_branch c =
  let rng = c.rng in
  let l1 = fresh_label c "b" in
  let cmp =
    if Rng.bool rng then
      fi
        (Alu
           ( Cmp, S32, R (Rng.choose rng wregs),
             if Rng.bool rng then I (Rng.int rng 256)
             else R (Rng.choose rng sregs) ))
    else fi (Test (S32, R (Rng.choose rng wregs), R (Rng.choose rng sregs)))
  in
  let cc = Rng.choose rng all_conds in
  let tame () =
    fi
      (match Rng.int rng 3 with
      | 0 -> Alu (Add, S32, R (Rng.choose rng wregs), I (Rng.int rng 1024))
      | 1 -> Mov (S32, R (Rng.choose rng wregs), I (imm rng))
      | _ -> Alu (Xor, S32, R (Rng.choose rng wregs), R (Rng.choose rng sregs)))
  in
  let items =
    if Rng.bool rng then [ cmp; FJcc (cc, l1); tame (); tame (); FLabel l1 ]
    else begin
      let l2 = fresh_label c "b" in
      [
        cmp; FJcc (cc, l1); tame (); FJmp l2; FLabel l1; tame (); tame ();
        FLabel l2;
      ]
    end
  in
  [ block "branch" items ]

let pool_smc c =
  let rng = c.rng in
  let lab = fresh_label c "smc" in
  let r = Rng.choose rng wregs in
  let v0 = Rng.int rng 0x10000 and v1 = Rng.int rng 0x10000 in
  let items =
    if Rng.bool rng then
      (* patch ahead: the store rewrites the imm32 of the mov that
         executes right after it *)
      [ FPatch (lab, v1); FLabel lab; fi (Mov (S32, R r, I v0)) ]
    else [ FLabel lab; fi (Mov (S32, R r, I v0)); FPatch (lab, v1) ]
  in
  [ block "smc" items ]

(* Fusable-pair pool: back-to-back sequences the pre-decoded core's
   macro-op fuser recognizes once lowered (cmp+jcc, test+jcc, push/push,
   load+op, op+store), with the memory halves aimed at page-straddling
   offsets and at SMC patch targets. Fusion must be observation-free, so
   the differential harness catches any pair whose fused dispatch
   diverges from slot-at-a-time execution — faulting second halves and
   pairs invalidated mid-flight included. *)
let pool_fusion c =
  let rng = c.rng in
  let pair _ =
    match Rng.int rng 6 with
    | 0 ->
      (* cmp+jcc *)
      let l = fresh_label c "fu" in
      [
        fi (Alu (Cmp, S32, R (Rng.choose rng wregs), I (Rng.int rng 256)));
        FJcc (Rng.choose rng all_conds, l);
        FLabel l;
      ]
    | 1 ->
      (* test+jcc *)
      let l = fresh_label c "fu" in
      [
        fi (Test (S32, R (Rng.choose rng wregs), R (Rng.choose rng sregs)));
        FJcc (Rng.choose rng all_conds, l);
        FLabel l;
      ]
    | 2 ->
      (* push/push (st+st), balanced so esp survives the block *)
      [
        fi (Push (R (Rng.choose rng sregs)));
        fi (Push (I (imm rng)));
        fi (Pop (R (Rng.choose rng wregs)));
        fi (Pop (R (Rng.choose rng wregs)));
      ]
    | 3 ->
      (* load+op with the load straddling a data-page boundary *)
      [
        fi
          (Mov
             ( S32, R (Rng.choose rng wregs),
               M (mem_abs (scratch_base + Rng.choose rng straddle_offs)) ));
        fi
          (Alu
             ( Rng.choose rng alu_ops, S32, R (Rng.choose rng wregs),
               R (Rng.choose rng sregs) ));
      ]
    | 4 ->
      (* op+store, the store sometimes page-straddling *)
      [
        fi
          (Alu
             ( Rng.choose rng alu_ops, S32, R (Rng.choose rng wregs),
               I (imm rng) ));
        fi
          (Mov
             ( S32,
               (if Rng.bool rng then M (smem rng)
                else M (mem_abs (scratch_base + Rng.choose rng straddle_offs))),
               R (Rng.choose rng sregs) ));
      ]
    | _ ->
      (* SMC aimed at the second half of a candidate pair: the patch
         invalidates the partner bundle after the head was examined *)
      let lab = fresh_label c "fusmc" in
      [
        fi (Alu (Cmp, S32, R (Rng.choose rng wregs), I 1));
        FLabel lab;
        fi (Mov (S32, R (Rng.choose rng wregs), I (Rng.int rng 0x10000)));
        FPatch (lab, Rng.int rng 0x10000);
      ]
  in
  let n = 2 + Rng.int rng 3 in
  [ block "fusion" (List.concat (List.init n pair)) ]

let pool_syscall c =
  let rng = c.rng in
  let items =
    match Rng.int rng 4 with
    | 0 ->
      [
        fi (Mov (S32, R Eax, I 200));
        fi (Mov (S32, R Ebx, I (1 + Rng.int rng 8)));
        fi (Int_n 0x80);
      ]
    | 1 ->
      [
        fi (Mov (S32, R Eax, I 158));
        fi (Mov (S32, R Ebx, I (1 + Rng.int rng 4)));
        fi (Int_n 0x80);
      ]
    | 2 ->
      [
        fi (Mov (S32, R Eax, I 4));
        fi (Mov (S32, R Ebx, I 1));
        fi (Mov (S32, R Ecx, I (scratch_base + 0x1000)));
        fi (Mov (S32, R Edx, I (Rng.int rng 17)));
        fi (Int_n 0x80);
      ]
    | _ -> [ fi (Mov (S32, R Eax, I (300 + Rng.int rng 100))); fi (Int_n 0x80) ]
  in
  [ block "syscall" items ]

(* Guest-thread cells and stacks live in the top kilobyte of the data
   section, above every scratch offset the other pools can generate:
   futex/tid cells at +0x3800, worker stacks growing down from +0x3C00,
   +0x3E00, +0x4000 (worker bodies push nothing, so a slot is ample).
   Worker slots rotate mod 3; every spawning atom joins its worker
   before the atom ends, so at most one fuzz worker is ever live. *)
let tcell w = Asm.default_data_base + 0x3800 + (4 * w)
let ttid w = Asm.default_data_base + 0x3810 + (4 * w)
let tstack w = Asm.default_data_base + 0x3C00 + (0x200 * w)

let spawn_items ~entry ~stack ~arg =
  [
    FMovlab (Ebx, entry);
    fi (Mov (S32, R Ecx, I stack));
    fi (Mov (S32, R Edx, I arg));
    fi (Mov (S32, R Eax, I 120));
    fi (Int_n 0x80);
  ]

let join_items ~tid_mem =
  [
    fi (Mov (S32, R Ebx, M tid_mem));
    fi (Mov (S32, R Eax, I 7));
    fi (Int_n 0x80);
  ]

let pool_threads c =
  let rng = c.rng in
  let w = c.next_worker mod 3 in
  c.next_worker <- c.next_worker + 1;
  let items =
    match Rng.int rng 5 with
    | 0 ->
      (* spawn a compute worker (optionally yielding) and join it *)
      let wl = fresh_label c "twork" and sl = fresh_label c "tskip" in
      let code = Rng.int rng 64 in
      let yieldy = Rng.bool rng in
      [ FJmp sl; FLabel wl ]
      @ [
          fi (Imul_rri (Eax, R Eax, 1103515245));
          fi (Alu (Add, S32, R Eax, I 12345));
          fi (Mov (S32, M (mem_abs (tcell w)), R Eax));
        ]
      @ (if yieldy then [ fi (Mov (S32, R Eax, I 159)); fi (Int_n 0x80) ]
         else [])
      @ [
          fi (Mov (S32, R Eax, I 1));
          fi (Mov (S32, R Ebx, I code));
          fi (Int_n 0x80);
          FLabel sl;
        ]
      @ spawn_items ~entry:wl ~stack:(tstack w) ~arg:(Rng.int rng 256)
      @ [ fi (Mov (S32, M (mem_abs (ttid w)), R Eax)) ]
      @ join_items ~tid_mem:(mem_abs (ttid w))
    | 1 ->
      (* futex handshake: worker loops check-then-wait on a cell the
         main thread raises and wakes; deadlock-free on any schedule *)
      let wl = fresh_label c "twork"
      and lp = fresh_label c "tloop"
      and dn = fresh_label c "tdone"
      and sl = fresh_label c "tskip" in
      let code = Rng.int rng 64 in
      [
        fi (Mov (S32, M (mem_abs (tcell w)), I 0));
        FJmp sl;
        FLabel wl;
        FLabel lp;
        fi (Mov (S32, R Eax, M (mem_abs (tcell w))));
        fi (Test (S32, R Eax, R Eax));
        FJcc (Ne, dn);
        fi (Mov (S32, R Eax, I 240));
        fi (Mov (S32, R Ebx, I (tcell w)));
        fi (Mov (S32, R Ecx, I 0));
        fi (Mov (S32, R Edx, I 0));
        fi (Int_n 0x80);
        FJmp lp;
        FLabel dn;
        fi (Mov (S32, R Eax, I 1));
        fi (Mov (S32, R Ebx, I code));
        fi (Int_n 0x80);
        FLabel sl;
      ]
      @ spawn_items ~entry:wl ~stack:(tstack w) ~arg:0
      @ [
          fi (Mov (S32, M (mem_abs (ttid w)), R Eax));
          fi (Mov (S32, M (mem_abs (tcell w)), I 1));
          fi (Mov (S32, R Eax, I 240));
          fi (Mov (S32, R Ebx, I (tcell w)));
          fi (Mov (S32, R Ecx, I 1));
          fi (Mov (S32, R Edx, I 8));
          fi (Int_n 0x80);
        ]
      @ join_items ~tid_mem:(mem_abs (ttid w))
    | 2 ->
      (* non-blocking futex error paths: value mismatch, wake with no
         waiters *)
      let v = 1 + Rng.int rng 1000 in
      [
        fi (Mov (S32, M (mem_abs (tcell w)), I v));
        fi (Mov (S32, R Eax, I 240));
        fi (Mov (S32, R Ebx, I (tcell w)));
        fi (Mov (S32, R Ecx, I 0));
        fi (Mov (S32, R Edx, I (v + 1)));
        fi (Int_n 0x80);
        fi (Mov (S32, R Eax, I 240));
        fi (Mov (S32, R Ebx, I (tcell w)));
        fi (Mov (S32, R Ecx, I 1));
        fi (Mov (S32, R Edx, I (1 + Rng.int rng 4)));
        fi (Int_n 0x80);
      ]
    | 3 ->
      (* join error paths: self-join and unknown tid *)
      let bogus = 1000 + Rng.int rng 1000 in
      [
        fi (Mov (S32, R Ebx, I 0));
        fi (Mov (S32, R Eax, I 7));
        fi (Int_n 0x80);
        fi (Mov (S32, R Ebx, I bogus));
        fi (Mov (S32, R Eax, I 7));
        fi (Int_n 0x80);
      ]
    | _ -> [ fi (Mov (S32, R Eax, I 159)); fi (Int_n 0x80) ]
  in
  [ block "threads" items ]

(* Terminal pool: both vehicles must agree on the architectural fault. *)
let pool_fault c =
  let rng = c.rng in
  let items =
    match Rng.int rng 3 with
    | 0 -> [ fi (Alu (Xor, S32, R Ecx, R Ecx)); fi (Div (S32, R Ecx)) ]
    | 1 -> [ fi Ud2 ]
    | _ -> [ fi (Mov (S32, R Eax, M (mem_abs 0x30000000))) ]
  in
  [ block "fault" items ]

(* Pool table: (name, base weight, engine-event buckets the pool targets).
   Steering triples the weight per still-uncovered target bucket. *)
let pool_table =
  [|
    ("alu", 10, [ "ev:commit_points"; "ev:hot_blocks" ]);
    ("mem", 8,
     [ "ev:misalign_stage1_hits"; "ev:misalign_os_faults"; "ev:misalign_avoided" ]);
    ("muldiv", 5, [ "ev:exceptions_filtered" ]);
    ("x87", 8, [ "ev:tos_checks"; "ev:tos_misses"; "ev:tag_misses" ]);
    ("x87_loop", 5, [ "ev:tos_misses" ]);
    ("mmx", 5, [ "ev:mode_checks"; "ev:mode_misses" ]);
    ("mmx_fp_flip", 5, [ "ev:mode_misses" ]);
    ("sse", 6, [ "ev:sse_checks"; "ev:sse_misses" ]);
    ("string", 5, [ "ev:misalign_os_faults" ]);
    ("branch", 8, [ "ev:chain_patches"; "ev:indirect_lookups" ]);
    ("fusion", 9, [ "ev:chain_patches"; "ev:smc_invalidations" ]);
    ("smc", 4, [ "ev:smc_invalidations"; "ev:degrade_smc_storms" ]);
    ("syscall", 6, [ "ev:commit_points"; "ev:rollforwards" ]);
    ("threads", 6,
     [ "ev:thread_spawns"; "ev:futex_waits"; "ev:thread_switches" ]);
    ("fault", 2, [ "ev:exceptions_filtered" ]);
  |]

let gen_pool c = function
  | "alu" -> pool_alu c
  | "mem" -> pool_mem c
  | "muldiv" -> pool_muldiv c
  | "x87" -> pool_x87 c
  | "x87_loop" -> pool_x87_loop c
  | "mmx" -> pool_mmx c
  | "mmx_fp_flip" -> pool_mmx_fp_flip c
  | "sse" -> pool_sse c
  | "string" -> pool_string c
  | "branch" -> pool_branch c
  | "fusion" -> pool_fusion c
  | "smc" -> pool_smc c
  | "syscall" -> pool_syscall c
  | "threads" -> pool_threads c
  | "fault" -> pool_fault c
  | p -> invalid_arg ("Fuzz.gen_pool: " ^ p)

let generate ?steer ~rng ~max_insns seed =
  let c = { rng; next_loop = 0; next_label = 0; next_worker = 0 } in
  let pro = prologue c in
  let atoms = ref [ pro ] in
  let used = ref (atom_insns pro) in
  let heat_done = ref false in
  let stop = ref false in
  let pick () =
    let weights =
      Array.map
        (fun (name, w, targets) ->
          let w =
            match steer with
            | None -> w
            | Some cov ->
              let unc =
                List.length
                  (List.filter (fun b -> not (Coverage.covered cov b)) targets)
              in
              w * (1 + (2 * unc))
          in
          (name, w))
        pool_table
    in
    let total = Array.fold_left (fun a (_, w) -> a + w) 0 weights in
    let k = ref (Rng.int rng total) in
    let chosen = ref (fst weights.(0)) in
    (try
       Array.iter
         (fun (n, w) ->
           if !k < w then begin
             chosen := n;
             raise Exit
           end
           else k := !k - w)
         weights
     with Exit -> ());
    !chosen
  in
  let guard = ref 0 in
  while (not !stop) && !used < max_insns && !guard < 200 do
    incr guard;
    let name = pick () in
    let batch = gen_pool c name in
    let batch =
      if name = "fault" then begin
        stop := true;
        batch
      end
      else if
        (not !heat_done) && c.next_loop < 60 && Rng.int rng 12 = 0
        && List.mem name [ "alu"; "mem"; "x87"; "sse"; "mmx" ]
      then begin
        (* one heat loop per program: enough trips to cross the cold
           block's heat threshold and register it *)
        heat_done := true;
        [
          Loop
            {
              pool = name; id = fresh_loop c; count = 130 + Rng.int rng 270;
              body = batch;
            };
        ]
      end
      else if c.next_loop < 60 && Rng.int rng 100 < 22 then
        [
          Loop
            {
              pool = name; id = fresh_loop c; count = 2 + Rng.int rng 7;
              body = batch;
            };
        ]
      else batch
    in
    let bn = List.fold_left (fun a x -> a + atom_insns x) 0 batch in
    if !used + bn <= max_insns + 8 then begin
      atoms := List.rev_append batch !atoms;
      used := !used + bn
    end
    else stop := true
  done;
  { seed; atoms = List.rev !atoms }

(* Decoder-surface sampler for the round-trip property and the boundary
   fuzz: any encodable instruction in canonical operand form, mirroring
   the envelope the encoder/decoder pair guarantees to round-trip. *)
let gen_insn rng =
  let reg () = Rng.choose rng [| Eax; Ecx; Edx; Ebx; Esp; Ebp; Esi; Edi |] in
  let reg_noesp () = Rng.choose rng [| Eax; Ecx; Edx; Ebx; Ebp; Esi; Edi |] in
  let size () = Rng.choose rng [| S8; S16; S32 |] in
  let disp () =
    match Rng.int rng 3 with
    | 0 -> 0
    | 1 -> Word.mask32 (Rng.int rng 256 - 128)
    | _ -> Word.mask32 (Rng.int rng 200001 - 100000)
  in
  let mem () =
    {
      base = (if Rng.bool rng then Some (reg ()) else None);
      index =
        (if Rng.bool rng then Some (reg_noesp (), Rng.choose rng [| 1; 2; 4; 8 |])
         else None);
      disp = disp ();
    }
  in
  let operand_rm () = if Rng.bool rng then R (reg ()) else M (mem ()) in
  let target () = Word.mask32 (0x400000 + Rng.int rng 0x100000) in
  let cond () = Rng.choose rng all_conds in
  let amount () =
    if Rng.bool rng then Amt_imm (1 + Rng.int rng 31) else Amt_cl
  in
  match Rng.int rng 26 with
  | 0 | 1 -> (
    let op = Rng.choose rng alu_ops and s = size () in
    match Rng.int rng 3 with
    | 0 -> Alu (op, s, operand_rm (), R (reg ()))
    | 1 -> Alu (op, s, R (reg ()), M (mem ()))
    | _ -> Alu (op, s, operand_rm (), I (imm_for rng s)))
  | 2 -> (
    let s = size () in
    match Rng.int rng 3 with
    | 0 -> Mov (s, operand_rm (), R (reg ()))
    | 1 -> Mov (s, R (reg ()), I (imm_for rng s))
    | _ -> Mov (s, M (mem ()), I (imm_for rng s)))
  | 3 -> Movzx ((if Rng.bool rng then S8 else S16), reg (), operand_rm ())
  | 4 -> Movsx ((if Rng.bool rng then S8 else S16), reg (), operand_rm ())
  | 5 -> Lea (reg (), mem ())
  | 6 ->
    Shift
      (Rng.choose rng [| Shl; Shr; Sar; Rol; Ror |], size (), operand_rm (),
       amount ())
  | 7 -> Inc (size (), operand_rm ())
  | 8 -> Neg (size (), operand_rm ())
  | 9 -> Imul_rr (reg (), operand_rm ())
  | 10 -> Div (size (), operand_rm ())
  | 11 -> (
    match Rng.int rng 3 with
    | 0 -> Push (R (reg ()))
    | 1 -> Push (M (mem ()))
    | _ -> Push (I (imm_for rng S32)))
  | 12 -> Pop (operand_rm ())
  | 13 -> Jmp (target ())
  | 14 -> Jcc (cond (), target ())
  | 15 -> Call (target ())
  | 16 -> Jmp_ind (operand_rm ())
  | 17 -> Setcc (cond (), operand_rm ())
  | 18 -> Cmovcc (cond (), reg (), operand_rm ())
  | 19 -> Movs (size (), Rng.choose rng [| No_rep; Rep; Repne |])
  | 20 -> Scas (size (), Rng.choose rng [| No_rep; Repe; Repne |])
  | 21 -> (
    match Rng.int rng 14 with
    | 0 -> Fp (Fld_st (Rng.int rng 8))
    | 1 -> Fp (Fld_m ((if Rng.bool rng then F32 else F64), mem ()))
    | 2 -> Fp Fld1
    | 3 -> Fp Fldz
    | 4 -> Fp (Fst_st (Rng.int rng 8, Rng.bool rng))
    | 5 ->
      Fp (Fst_m ((if Rng.bool rng then F32 else F64), mem (), Rng.bool rng))
    | 6 -> Fp (Fop_st0_st (Rng.choose rng fops, Rng.int rng 8))
    | 7 -> Fp (Fop_st_st0 (Rng.choose rng fops, Rng.int rng 8, Rng.bool rng))
    | 8 ->
      Fp (Fop_m (Rng.choose rng fops, (if Rng.bool rng then F32 else F64), mem ()))
    | 9 -> Fp (Fxch (Rng.int rng 8))
    | 10 -> Fp (Fcom_st (Rng.int rng 8, Rng.int rng 2))
    | 11 -> Fp Fnstsw_ax
    | 12 -> Fp Fchs
    | _ -> Fp Fsqrt)
  | 22 -> (
    match Rng.int rng 7 with
    | 0 ->
      Mmx
        (Movd_to_mm
           (Rng.int rng 8, if Rng.bool rng then R (reg ()) else M (mem ())))
    | 1 ->
      Mmx
        (Movq_to_mm
           (Rng.int rng 8, if Rng.bool rng then MM (Rng.int rng 8) else MMem (mem ())))
    | 2 ->
      Mmx
        (Padd
           ( Rng.choose rng [| 1; 2; 4; 8 |], Rng.int rng 8,
             if Rng.bool rng then MM (Rng.int rng 8) else MMem (mem ()) ))
    | 3 ->
      Mmx
        (Psub
           ( Rng.choose rng [| 1; 2; 4; 8 |], Rng.int rng 8,
             if Rng.bool rng then MM (Rng.int rng 8) else MMem (mem ()) ))
    | 4 ->
      Mmx
        (Pxor
           (Rng.int rng 8, if Rng.bool rng then MM (Rng.int rng 8) else MMem (mem ())))
    | 5 ->
      Mmx (Psll (Rng.choose rng [| 2; 4; 8 |], Rng.int rng 8, Rng.int rng 64))
    | _ -> Mmx Emms)
  | 23 -> (
    match Rng.int rng 6 with
    | 0 ->
      Sse
        (Movaps
           ( XM (Rng.int rng 8),
             if Rng.bool rng then XM (Rng.int rng 8) else XMem (mem ()) ))
    | 1 -> Sse (Movaps (XMem (mem ()), XM (Rng.int rng 8)))
    | 2 ->
      Sse
        (Sse_arith
           ( Rng.choose rng [| SAdd; SSub; SMul; SDiv; SMin; SMax |],
             Rng.choose rng
               [| Packed_single; Packed_double; Scalar_single; Scalar_double |],
             Rng.int rng 8,
             if Rng.bool rng then XM (Rng.int rng 8) else XMem (mem ()) ))
    | 3 ->
      Sse
        (Xorps
           (Rng.int rng 8, if Rng.bool rng then XM (Rng.int rng 8) else XMem (mem ())))
    | 4 ->
      Sse
        (Ucomiss
           (Rng.int rng 8, if Rng.bool rng then XM (Rng.int rng 8) else XMem (mem ())))
    | _ ->
      Sse
        (Cvtsi2ss
           (Rng.int rng 8, if Rng.bool rng then R (reg ()) else M (mem ())))
  )
  | 24 -> Rng.choose rng [| Nop; Cdq; Ret 0 |]
  | _ -> (
    let s = size () in
    Alu (Rng.choose rng alu_ops, s, operand_rm (), I (imm_for rng s)))

(* ---------------------------------------------------------------- *)
(* Running                                                           *)
(* ---------------------------------------------------------------- *)

type run_result =
  | R_ok of { commits : int; exit_code : int }
  | R_halted of Fault.t
  | R_fuel
  | R_diverged of L.divergence
  | R_crash of string

type exec = { result : run_result; engine : E.t option }

let run_one ?config ?(fuel = 12_000_000) ?inject_seed ?attach_extra p =
  let engine = ref None in
  match
    let image = build_image p in
    let mem = Memory.create () in
    let st0 = Asm.load ~writable_code:true image mem in
    let attach e =
      engine := Some e;
      (match inject_seed with
      | Some s -> Inject.attach (Inject.create ~seed:s ()) e
      | None -> ());
      match attach_extra with Some f -> f e | None -> ()
    in
    L.run ?config ~fuel ~attach ~btlib:(module Btlib.Linuxsim) mem st0
  with
  | report ->
    let result =
      match report.L.divergence with
      | Some d -> R_diverged d
      | None -> (
        match report.L.outcome with
        | Some (E.Exited (code, _)) ->
          R_ok { commits = report.L.commits; exit_code = code }
        | Some (E.Unhandled_fault (f, _)) -> R_halted f
        | Some E.Out_of_fuel | None -> R_fuel)
    in
    { result; engine = !engine }
  | exception ex -> { result = R_crash (Printexc.to_string ex); engine = !engine }

(* ---------------------------------------------------------------- *)
(* Findings and shrinking                                            *)
(* ---------------------------------------------------------------- *)

type classification = Diverged | Crashed | Livelocked

type finding = {
  prog : prog;
  inject_seed : int option;
  classification : classification;
  detail : string;
  window : string list;
}

let classify = function
  | R_diverged _ -> Some Diverged
  | R_crash _ -> Some Crashed
  | R_fuel -> Some Livelocked
  | R_ok _ | R_halted _ -> None

let describe = function
  | R_ok { commits; exit_code } ->
    Printf.sprintf "ok: exit %d after %d commits" exit_code commits
  | R_halted f -> "halted on agreed fault: " ^ Fault.to_string f
  | R_fuel -> "out of fuel (livelock or runaway loop)"
  | R_diverged d ->
    Printf.sprintf "diverged at commit %d: %s" d.L.commit_index
      (String.concat "; " d.L.diffs)
  | R_crash s -> "translator stack raised: " ^ s

let window_of = function R_diverged d -> d.L.window | _ -> []

let classification_name = function
  | Diverged -> "divergence"
  | Crashed -> "crash"
  | Livelocked -> "livelock"

(* Structural helpers for the shrinker. All candidate edits keep label
   uses consistent or are rejected by [labels_ok] before spending any of
   the re-run budget. *)

let rec list_replace k v = function
  | [] -> []
  | x :: tl -> if k = 0 then v :: tl else x :: list_replace (k - 1) v tl

let labels_ok p =
  let defined = Hashtbl.create 8 in
  let ok = ref true in
  let rec collect = function
    | Block b ->
      List.iter
        (function FLabel l -> Hashtbl.replace defined l () | _ -> ())
        b.items
    | Loop l -> List.iter collect l.body
  in
  List.iter collect p.atoms;
  let rec check = function
    | Block b ->
      List.iter
        (function
          | FJmp l | FJcc (_, l) | FPatch (l, _) | FMovlab (_, l) ->
            if not (Hashtbl.mem defined l) then ok := false
          | _ -> ())
        b.items
    | Loop l -> List.iter check l.body
  in
  List.iter check p.atoms;
  !ok

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rec atom_implicated window = function
  | Block b ->
    List.exists
      (function
        | FI i ->
          let s = Insn.to_string i in
          List.exists (fun l -> contains l s) window
        | _ -> false)
      b.items
  | Loop l -> List.exists (atom_implicated window) l.body

(* Every way of removing one atom (recursively); flagged true when the
   removed atom is implicated by the reproducer window, so unimplicated
   removals are attempted first. *)
let rec removals window atoms =
  List.concat
    (List.mapi
       (fun k a ->
         let drop =
           (atom_implicated window a, List.filteri (fun j _ -> j <> k) atoms)
         in
         let inner =
           match a with
           | Loop l ->
             List.map
               (fun (f, body) ->
                 (f, list_replace k (Loop { l with body }) atoms))
               (removals window l.body)
           | Block _ -> []
         in
         drop :: inner)
       atoms)

(* Loop edits: splice the body in place of the loop, or shrink the trip
   count. *)
let rec loop_tweaks atoms =
  List.concat
    (List.mapi
       (fun k a ->
         match a with
         | Block _ -> []
         | Loop l ->
           let flat =
             List.concat
               (List.mapi (fun j x -> if j = k then l.body else [ x ]) atoms)
           in
           let counts =
             List.sort_uniq compare
               (List.filter
                  (fun n -> n >= 1 && n < l.count)
                  [ 1; l.count / 2; l.count - 1 ])
           in
           (flat
           :: List.map
                (fun count -> list_replace k (Loop { l with count }) atoms)
                counts)
           @ List.map
               (fun body -> list_replace k (Loop { l with body }) atoms)
               (loop_tweaks l.body))
       atoms)

let rec item_drops atoms =
  List.concat
    (List.mapi
       (fun k a ->
         match a with
         | Block b when List.length b.items > 1 ->
           List.mapi
             (fun j _ ->
               list_replace k
                 (Block
                    { b with items = List.filteri (fun j' _ -> j' <> j) b.items })
                 atoms)
             b.items
         | Block _ -> []
         | Loop l ->
           List.map
             (fun body -> list_replace k (Loop { l with body }) atoms)
             (item_drops l.body))
       atoms)

(* One whole-program operand-simplification pass: shrink immediates to 1
   (keeping scratch-area pointers intact) and drop SIB complexity. *)
let simplify_atoms atoms =
  let changed = ref false in
  let data_lo = Asm.default_data_base and data_hi = Asm.default_data_base + 0x4000 in
  let fix_op o =
    match o with
    | I n when n <> 0 && n <> 1 && not (n >= data_lo && n < data_hi) ->
      changed := true;
      I 1
    | M m when m.index <> None ->
      changed := true;
      M { m with index = None }
    | o -> o
  in
  let fix_insn = function
    | Alu (op, s, d, src) -> Alu (op, s, d, fix_op src)
    | Mov (s, d, src) -> Mov (s, d, fix_op src)
    | Test (s, d, src) -> Test (s, d, fix_op src)
    | Push src -> Push (fix_op src)
    | i -> i
  in
  let fix_item = function FI i -> FI (fix_insn i) | it -> it in
  let rec fix_atom = function
    | Block b -> Block { b with items = List.map fix_item b.items }
    | Loop l -> Loop { l with body = List.map fix_atom l.body }
  in
  let atoms' = List.map fix_atom atoms in
  if !changed then [ atoms' ] else []

let psize p =
  let il = prog_insns p in
  (List.length il * 1000)
  + List.fold_left (fun a i -> a + String.length (Insn.to_string i)) 0 il

let shrink ?(budget = 400) ?config ?fuel ?attach_extra f =
  let runs = ref 0 in
  let try_case prog seed =
    if !runs >= budget then false
    else begin
      incr runs;
      let ex = run_one ?config ?fuel ?inject_seed:seed ?attach_extra prog in
      classify ex.result = Some f.classification
    end
  in
  let seed = ref f.inject_seed in
  let cur = ref f.prog in
  if !seed <> None && try_case !cur None then seed := None;
  let progress = ref true in
  while !progress do
    progress := false;
    let ordered_removals =
      List.map snd
        (List.stable_sort
           (fun (a, _) (b, _) -> compare a b)
           (removals f.window !cur.atoms))
    in
    let candidates =
      ordered_removals @ loop_tweaks !cur.atoms @ item_drops !cur.atoms
      @ simplify_atoms !cur.atoms
    in
    let accept atoms =
      let p = { !cur with atoms } in
      labels_ok p && psize p < psize !cur
      && try_case p !seed
      && begin
           cur := p;
           true
         end
    in
    match List.find_opt accept candidates with
    | Some _ -> progress := true
    | None -> ()
  done;
  let p = !cur in
  let ex = run_one ?config ?fuel ?inject_seed:!seed ?attach_extra p in
  match classify ex.result with
  | Some c when c = f.classification ->
    {
      prog = p;
      inject_seed = !seed;
      classification = c;
      detail = describe ex.result;
      window = window_of ex.result;
    }
  | _ -> { f with prog = p; inject_seed = !seed }

let pp_finding ppf f =
  Fmt.pf ppf "@[<v>%s (program seed %d%s, %d insns)@,%s@,"
    (String.uppercase_ascii (classification_name f.classification))
    f.prog.seed
    (match f.inject_seed with
    | Some s -> Printf.sprintf ", inject seed %d" s
    | None -> ", no injection")
    (insn_count f.prog) f.detail;
  if f.window <> [] then begin
    Fmt.pf ppf "reproducer window:@,";
    List.iter (fun l -> Fmt.pf ppf "  %s@," l) f.window
  end;
  Fmt.pf ppf "reproducer program:@,%a@]" pp_prog_ocaml f.prog

(* ---------------------------------------------------------------- *)
(* Campaigns                                                         *)
(* ---------------------------------------------------------------- *)

type campaign_config = {
  seed : int;
  runs : int;
  max_insns : int;
  inject_seeds : int list;
  shrink_findings : bool;
  shrink_budget : int;
  fuel : int;
  max_findings : int;
  corpus_dir : string option;
  attach_extra : (E.t -> unit) option;
  log : string -> unit;
}

let default_campaign =
  {
    seed = 0;
    runs = 500;
    max_insns = 32;
    inject_seeds = [ 1; 2 ];
    shrink_findings = true;
    shrink_budget = 300;
    fuel = 12_000_000;
    max_findings = 5;
    corpus_dir = None;
    attach_extra = None;
    log = ignore;
  }

type campaign_result = {
  programs : int;
  executions : int;
  pools_hit : (string * int) list;
  coverage : (string * int) list;
  findings : finding list;
  corpus_saved : int;
}

let save_corpus dir (p : prog) =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let file = Filename.concat dir (Printf.sprintf "prog_%d.ml" p.seed) in
    let oc = open_out file in
    let ppf = Format.formatter_of_out_channel oc in
    pp_prog_ocaml ppf p;
    Format.pp_print_newline ppf ();
    close_out oc;
    true
  with _ -> false

let campaign cfg =
  let cov = Coverage.create () in
  let pools_tbl = Hashtbl.create 16 in
  let bump name =
    match Hashtbl.find_opt pools_tbl name with
    | Some r -> incr r
    | None -> Hashtbl.add pools_tbl name (ref 1)
  in
  let findings = ref [] in
  let n_findings = ref 0 in
  let executions = ref 0 in
  let programs = ref 0 in
  let corpus_saved = ref 0 in
  (try
     for k = 0 to cfg.runs - 1 do
       let pseed = (cfg.seed * 1_000_003) + k in
       let rng = Rng.create pseed in
       let p = generate ~steer:cov ~rng ~max_insns:cfg.max_insns pseed in
       incr programs;
       List.iter bump (pools p);
       let fresh = ref 0 in
       List.iter
         (fun i ->
           List.iter
             (fun b -> if Coverage.note cov b then incr fresh)
             (static_buckets i))
         (prog_insns p);
       let run_case seed_opt =
         incr executions;
         let ex =
           run_one ~fuel:cfg.fuel ?inject_seed:seed_opt
             ?attach_extra:cfg.attach_extra p
         in
         (match ex.engine with
         | Some e ->
           (* per-program counter deltas via the one metrics snapshot the
              CLIs and JSON export also use (counter names are stable
              coverage-bucket keys) *)
           List.iter
             (fun (n, v) ->
               if v > 0 && Coverage.note cov ("ev:" ^ n) then incr fresh)
             (Obs.Metrics.counters (E.metrics e))
         | None -> ());
         match classify ex.result with
         | Some c ->
           findings :=
             {
               prog = p;
               inject_seed = seed_opt;
               classification = c;
               detail = describe ex.result;
               window = window_of ex.result;
             }
             :: !findings;
           incr n_findings;
           cfg.log
             (Printf.sprintf "program %d: %s%s" pseed (classification_name c)
                (match seed_opt with
                | Some s -> Printf.sprintf " (inject seed %d)" s
                | None -> ""));
           true
         | None -> false
       in
       let found = run_case None in
       let found =
         List.fold_left
           (fun acc s -> if acc then acc else run_case (Some s))
           found cfg.inject_seeds
       in
       (match cfg.corpus_dir with
       | Some dir when (not found) && !fresh > 0 ->
         if save_corpus dir p then incr corpus_saved
       | _ -> ());
       if !n_findings >= cfg.max_findings then raise Exit
     done
   with Exit -> ());
  let findings = List.rev !findings in
  let findings =
    if cfg.shrink_findings then
      List.map
        (fun f ->
          cfg.log
            (Printf.sprintf "shrinking %s from program %d (%d insns)..."
               (classification_name f.classification) f.prog.seed
               (insn_count f.prog));
          let f' =
            shrink ~budget:cfg.shrink_budget ~fuel:cfg.fuel
              ?attach_extra:cfg.attach_extra f
          in
          cfg.log (Printf.sprintf "  ...shrunk to %d insns" (insn_count f'.prog));
          f')
        findings
    else findings
  in
  {
    programs = !programs;
    executions = !executions;
    pools_hit =
      List.sort compare
        (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) pools_tbl []);
    coverage = Coverage.to_list cov;
    findings;
    corpus_saved = !corpus_saved;
  }

(* ---------------------------------------------------------------- *)
(* Fork-server                                                       *)
(* ---------------------------------------------------------------- *)

(* A fork-server over one base program: build the image and the lockstep
   session once, snapshot both vehicles after startup, then serve
   mutated inputs by writing bytes into the scratch region of BOTH
   memories, running the pair and reverting. The engine snapshot is warm
   ([barrier:false]): translated blocks survive the revert unless their
   source pages were touched, so runs after the first skip both engine
   creation and translation; the memory side is the page journal, so a
   revert costs O(pages touched). *)

type server = {
  srv_session : L.session;
  srv_fuel : int;
  mutable srv_ck : Btlib.Vos.checkpoint option; (* ref-side OS checkpoint *)
  mutable srv_runs : int;
}

(* The mutable input region: the scratch area between the loop counters
   and the guest-thread cells; everything the generated pools load from.
   Mutation offsets are relative to [scratch_base]. *)
let mutation_span = 0x3700

let server_start ?config ?(fuel = 12_000_000) p =
  let image = build_image p in
  let mem = Memory.create () in
  let st0 = Asm.load ~writable_code:true image mem in
  let srv_session = L.create ?config ~btlib:(module Btlib.Linuxsim) mem st0 in
  { srv_session; srv_fuel = fuel; srv_ck = None; srv_runs = 0 }

let server_push srv =
  ignore (E.snapshot ~barrier:false (L.engine srv.srv_session));
  Memory.Journal.push (L.reference_mem srv.srv_session);
  srv.srv_ck <- Some (Btlib.Vos.checkpoint (L.reference_vos srv.srv_session))

let server_revert srv =
  let e = L.engine srv.srv_session in
  (* a divergence or a raised [Bt_error] unwinds out of [Engine.run]
     without the usual rest-state cleanup; clear the transients before
     rewinding *)
  e.E.running_block <- None;
  e.E.smc_pending <- [];
  ignore (E.revert e);
  ignore (Memory.Journal.revert (L.reference_mem srv.srv_session));
  (match srv.srv_ck with
  | Some ck -> Btlib.Vos.restore (L.reference_vos srv.srv_session) ck
  | None -> ());
  srv.srv_ck <- None

let apply_mutation srv muts =
  let emem = (L.engine srv.srv_session).E.mem in
  let rmem = L.reference_mem srv.srv_session in
  List.iter
    (fun (off, v) ->
      let a = scratch_base + (off mod mutation_span) in
      Memory.write8 emem a (v land 0xFF);
      Memory.write8 rmem a (v land 0xFF))
    muts

let server_run srv muts =
  server_push srv;
  apply_mutation srv muts;
  let result =
    match L.run_in ~fuel:srv.srv_fuel srv.srv_session with
    | report -> (
      match report.L.divergence with
      | Some d -> R_diverged d
      | None -> (
        match report.L.outcome with
        | Some (E.Exited (code, _)) ->
          R_ok { commits = report.L.commits; exit_code = code }
        | Some (E.Unhandled_fault (f, _)) -> R_halted f
        | Some E.Out_of_fuel | None -> R_fuel))
    | exception ex -> R_crash (Printexc.to_string ex)
  in
  srv.srv_runs <- srv.srv_runs + 1;
  server_revert srv;
  result

let server_runs srv = srv.srv_runs

let server_pages_restored srv =
  E.pages_restored (L.engine srv.srv_session)
  + Memory.Journal.pages_restored (L.reference_mem srv.srv_session)

type forkserver_config = {
  fs_seed : int;
  fs_programs : int; (* base programs, one server each *)
  fs_mutations : int; (* mutated runs per base, after the base input *)
  fs_max_insns : int;
  fs_fuel : int;
  fs_max_findings : int;
  fs_log : string -> unit;
}

let default_forkserver =
  {
    fs_seed = 0;
    fs_programs = 4;
    fs_mutations = 64;
    fs_max_insns = 32;
    fs_fuel = 12_000_000;
    fs_max_findings = 5;
    fs_log = ignore;
  }

type forkserver_result = {
  fs_runs : int; (* inputs executed, base inputs included *)
  fs_bases : int;
  fs_findings : (finding * (int * int) list) list;
      (** each finding with the mutation (offset, byte) list that hit it *)
  fs_pages_restored : int;
}

let mutation_of_rng rng =
  List.init
    (1 + Rng.int rng 48)
    (fun _ -> (Rng.int rng mutation_span, Rng.int rng 256))

let forkserver_campaign cfg =
  let rng = Rng.create (cfg.fs_seed + 0x5EED) in
  let findings = ref [] in
  let runs = ref 0 in
  let bases = ref 0 in
  let restored = ref 0 in
  (try
     for k = 0 to cfg.fs_programs - 1 do
       let pseed = (cfg.fs_seed * 1_000_003) + k in
       let prng = Rng.create pseed in
       let p = generate ~rng:prng ~max_insns:cfg.fs_max_insns pseed in
       let srv = server_start ~fuel:cfg.fs_fuel p in
       incr bases;
       for m = 0 to cfg.fs_mutations do
         let muts = if m = 0 then [] else mutation_of_rng rng in
         let result = server_run srv muts in
         incr runs;
         (match classify result with
         | Some c ->
           findings :=
             ( {
                 prog = p;
                 inject_seed = None;
                 classification = c;
                 detail = describe result;
                 window = window_of result;
               },
               muts )
             :: !findings;
           cfg.fs_log
             (Printf.sprintf "program %d mutation %d: %s" pseed m
                (classification_name c))
         | None -> ());
         if List.length !findings >= cfg.fs_max_findings then raise Exit
       done;
       restored := !restored + server_pages_restored srv
     done
   with Exit -> ());
  {
    fs_runs = !runs;
    fs_bases = !bases;
    fs_findings = List.rev !findings;
    fs_pages_restored = !restored;
  }

(* ---------------------------------------------------------------- *)
(* CLI helpers                                                       *)
(* ---------------------------------------------------------------- *)

let parse_seed_spec s =
  let err = ref None in
  let parse_int t =
    match int_of_string_opt (String.trim t) with
    | Some n when n >= 0 -> Some n
    | _ -> None
  in
  let seeds =
    List.concat_map
      (fun seg ->
        let seg = String.trim seg in
        match String.index_opt seg '-' with
        | Some k when k > 0 ->
          let a = parse_int (String.sub seg 0 k) in
          let b = parse_int (String.sub seg (k + 1) (String.length seg - k - 1)) in
          (match (a, b) with
          | Some a, Some b when a <= b -> List.init (b - a + 1) (fun i -> a + i)
          | _ ->
            err := Some seg;
            [])
        | _ -> (
          match parse_int seg with
          | Some n -> [ n ]
          | None ->
            err := Some seg;
            []))
      (String.split_on_char ',' s)
  in
  match !err with
  | Some seg -> Error (Printf.sprintf "bad seed spec %S" seg)
  | None -> Ok (List.sort_uniq compare seeds)
