(* Resilience harness: one-call runners tying a workload to the lockstep
   differential vehicle and the deterministic fault injector. Used by the
   CLI driver (--lockstep / --inject) and the resilience test suite. *)

module C = Workloads.Common
module E = Ia32el.Engine

let default_fuel = 2_000_000_000

type lockstep_result = {
  report : Ia32el.Lockstep.report;
  engine : E.t; (* for output, accounting, degradation counters *)
  inject_stats : Inject.stats option;
  output : string; (* guest console output (engine side) *)
}

(* Run [w] under the engine with the reference interpreter in lockstep,
   optionally with the chaos injector attached. [attach_extra] runs after
   the injector (test hook for seeding deliberate bugs). *)
let run_lockstep ?config ?cost ?dcache ?seed ?(fuel = default_fuel)
    ?(attach_extra = fun (_ : E.t) -> ()) (w : C.t) ~scale =
  let image = w.C.build ~scale ~wide:false in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let injector = Option.map (fun seed -> Inject.create ~seed ()) seed in
  let captured = ref None in
  let attach eng =
    captured := Some eng;
    Option.iter (fun i -> Inject.attach i eng) injector;
    attach_extra eng
  in
  let report =
    Ia32el.Lockstep.run ?config ?cost ?dcache ~fuel ~attach
      ~btlib:(module Btlib.Linuxsim)
      mem st
  in
  let engine = Option.get !captured in
  {
    report;
    engine;
    inject_stats = Option.map Inject.stats injector;
    output = Btlib.Vos.output engine.E.vos;
  }

type plain_result = {
  outcome : E.outcome;
  engine : E.t;
  inject_stats : Inject.stats option;
  output : string;
}

(* Run [w] under the engine alone (no reference), optionally injected. *)
let run_plain ?config ?cost ?dcache ?seed ?(fuel = default_fuel)
    ?(attach = fun _ -> ()) (w : C.t) ~scale =
  let image = w.C.build ~scale ~wide:false in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let engine = E.create ?config ?cost ?dcache ~btlib:(module Btlib.Linuxsim) mem in
  let injector = Option.map (fun seed -> Inject.create ~seed ()) seed in
  Option.iter (fun i -> Inject.attach i engine) injector;
  attach engine;
  let outcome = E.run ~fuel engine st in
  {
    outcome;
    engine;
    inject_stats = Option.map Inject.stats injector;
    output = Btlib.Vos.output engine.E.vos;
  }
