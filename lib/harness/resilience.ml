(* Resilience harness: one-call runners tying a workload to the lockstep
   differential vehicle and the deterministic fault injector. Used by the
   CLI driver (--lockstep / --inject) and the resilience test suite. *)

module C = Workloads.Common
module E = Ia32el.Engine

let default_fuel = 2_000_000_000

type lockstep_result = {
  report : Ia32el.Lockstep.report;
  engine : E.t; (* for output, accounting, degradation counters *)
  inject_stats : Inject.stats option;
  output : string; (* guest console output (engine side) *)
  capsule_written : string option; (* crash-capsule file, on failure *)
}

(* Shared watchdog/snapshot-cadence/capsule plumbing: build the recorder
   before the engine exists (the initial image must not contain the
   profile arena), apply the engine knobs from inside [attach], and
   write the capsule only when the run actually failed. *)
let apply_knobs ?max_cycles ?snap_every (eng : E.t) =
  if max_cycles <> None then eng.E.max_cycles <- max_cycles;
  if snap_every <> None then eng.E.snap_every <- snap_every

let write_capsule capsule recorder failure =
  match (capsule, recorder) with
  | Some file, Some r ->
    Capsule.save file (Capsule.finalize r failure);
    Some file
  | _ -> None

(* Run [w] under the engine with the reference interpreter in lockstep,
   optionally with the chaos injector attached. [attach_extra] runs after
   the injector (test hook for seeding deliberate bugs). *)
let run_lockstep ?config ?cost ?dcache ?seed ?(fuel = default_fuel)
    ?max_cycles ?snap_every ?capsule ?sabotage
    ?(attach_extra = fun (_ : E.t) -> ()) (w : C.t) ~scale =
  let image = w.C.build ~scale ~wide:false in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let recorder =
    Option.map
      (fun _ ->
        Capsule.recorder ?max_cycles ?snap_every ?inject_seed:seed ?sabotage
          ~lockstep:true
          ~config:(Option.value config ~default:Ia32el.Config.default)
          ~fuel mem st)
      capsule
  in
  let injector = Option.map (fun seed -> Inject.create ~seed ()) seed in
  let captured = ref None in
  let attach eng =
    captured := Some eng;
    apply_knobs ?max_cycles ?snap_every eng;
    Option.iter (fun i -> Inject.attach i eng) injector;
    Option.iter (fun sb -> Capsule.sabotage_attach sb eng) sabotage;
    attach_extra eng;
    Option.iter (fun r -> Capsule.observe r eng) recorder
  in
  match
    Ia32el.Lockstep.run ?config ?cost ?dcache ~fuel ~attach
      ~btlib:(module Btlib.Linuxsim)
      mem st
  with
  | report ->
    let engine = Option.get !captured in
    let capsule_written =
      match report.Ia32el.Lockstep.divergence with
      | Some d ->
        write_capsule capsule recorder (Capsule.failure_of_divergence d)
      | None -> (
        match report.Ia32el.Lockstep.outcome with
        | Some (E.Unhandled_fault (f, _)) ->
          write_capsule capsule recorder
            (Capsule.F_unhandled_fault (Ia32.Fault.to_string f))
        | _ -> None)
    in
    {
      report;
      engine;
      inject_stats = Option.map Inject.stats injector;
      output = Btlib.Vos.output engine.E.vos;
      capsule_written;
    }
  | exception Ia32el.Bt_error.Error e ->
    (* structured translator error (watchdog included): capture, then let
       the caller render the diagnosis *)
    ignore (write_capsule capsule recorder (Capsule.failure_of_bt e));
    raise (Ia32el.Bt_error.Error e)

type plain_result = {
  outcome : E.outcome;
  engine : E.t;
  inject_stats : Inject.stats option;
  output : string;
  capsule_written : string option;
}

(* Run [w] under the engine alone (no reference), optionally injected. *)
let run_plain ?config ?cost ?dcache ?seed ?(fuel = default_fuel) ?max_cycles
    ?snap_every ?capsule ?sabotage ?(attach = fun _ -> ()) (w : C.t) ~scale =
  let image = w.C.build ~scale ~wide:false in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let recorder =
    Option.map
      (fun _ ->
        Capsule.recorder ?max_cycles ?snap_every ?inject_seed:seed ?sabotage
          ~lockstep:false
          ~config:(Option.value config ~default:Ia32el.Config.default)
          ~fuel mem st)
      capsule
  in
  let engine = E.create ?config ?cost ?dcache ~btlib:(module Btlib.Linuxsim) mem in
  apply_knobs ?max_cycles ?snap_every engine;
  let injector = Option.map (fun seed -> Inject.create ~seed ()) seed in
  Option.iter (fun i -> Inject.attach i engine) injector;
  Option.iter (fun sb -> Capsule.sabotage_attach sb engine) sabotage;
  attach engine;
  Option.iter (fun r -> Capsule.observe r engine) recorder;
  match E.run ~fuel engine st with
  | outcome ->
    let capsule_written =
      match outcome with
      | E.Unhandled_fault (f, _) ->
        write_capsule capsule recorder
          (Capsule.F_unhandled_fault (Ia32.Fault.to_string f))
      | _ -> None
    in
    {
      outcome;
      engine;
      inject_stats = Option.map Inject.stats injector;
      output = Btlib.Vos.output engine.E.vos;
      capsule_written;
    }
  | exception Ia32el.Bt_error.Error e ->
    ignore (write_capsule capsule recorder (Capsule.failure_of_bt e));
    raise (Ia32el.Bt_error.Error e)
