(** Deterministic fault injector.

    A seed-driven chaos source for the translator's recovery machinery:
    attached to an engine, it perturbs execution at dispatch boundaries
    through the engine's semantics-preserving chaos primitives. Every
    decision comes from a splitmix64 stream seeded by [seed], so a run is
    exactly reproducible from (guest image, seed) — a failing injection
    run is a test case, not an anecdote.

    Injection points (each a named rate, 1-in-N per dispatch, 0 disables):
    - [rate_tos]: rotate the physical FP stack so the next block-head TOS
      check misses ({!Ia32el.Engine.force_tos_rotation});
    - [rate_sse]: rewrite XMM registers to the packed-double container
      format, defeating SSE format speculation
      ({!Ia32el.Engine.force_sse_scramble});
    - [rate_smc]: spuriously invalidate live blocks as if their source
      pages had been written ({!Ia32el.Engine.spurious_smc_invalidate}),
      also exercising SMC-storm degradation;
    - [rate_flush]: wholesale translation-cache flushes;
    - [rate_squeeze]: eviction storms — clamp the translation cache to a
      tiny capacity for a window of dispatches;
    - [rate_transient]: transient kernel failures on system services,
      ridden out by the Vos bounded retry/backoff
      ({!Btlib.Vos.t.transient_fault}).

    All points preserve guest-visible semantics: under any seed the guest
    must produce byte-identical output and exit code, which is what the
    lockstep vehicle ({!Ia32el.Lockstep}) checks. *)

type stats = {
  mutable dispatches_seen : int;
  mutable tos_rotations : int;
  mutable sse_scrambles : int;
  mutable smc_invalidations : int;
  mutable cache_flushes : int;
  mutable capacity_squeezes : int;
  mutable transient_faults : int;
}

type t

val create :
  ?rate_tos:int ->
  ?rate_sse:int ->
  ?rate_smc:int ->
  ?rate_flush:int ->
  ?rate_squeeze:int ->
  ?rate_transient:int ->
  seed:int ->
  unit ->
  t

val attach : t -> Ia32el.Engine.t -> unit
(** Install the injector on an engine: hooks
    {!Ia32el.Engine.t.on_dispatch} and the engine Vos's transient-failure
    hook. Call before {!Ia32el.Engine.run}. *)

val stats : t -> stats
val total_injections : stats -> int
val pp_stats : Format.formatter -> stats -> unit

(** {2 Disk faults}

    Deterministic corruptions of a persistent translation-cache file
    ({!Persist}), for proving the load-time robustness ladder: every mode
    must degrade a subsequent warm start to live retranslation with a
    structured diagnostic — never a crash, never a behaviour change. *)

type disk_fault =
  | Bit_flip of int
      (** flip bit [off land 7] of the byte at [off mod size] — lands in
          the header, an entry frame or the trailer depending on [off] *)
  | Truncate of int  (** drop the last [n] bytes (clamped at empty) *)
  | Partial_write of int
      (** keep only the first [n] bytes — a torn in-place overwrite (the
          real writer is atomic; this models a bypassed rename) *)
  | Stale_fingerprint
      (** rewrite the header's image hash, recomputing the header
          checksum — a cache from a different guest build, exercising
          the staleness ladder rather than the corruption one *)
  | Lock_held
      (** create [<path>.lock] as a concurrent writer would, so a save
          must back off *)

val pp_disk_fault : Format.formatter -> disk_fault -> unit

val all_disk_faults : disk_fault list
(** One representative of every mode, for smoke matrices. *)

val apply_disk_fault : path:string -> disk_fault -> (unit, string) result
(** Mutate the file (or its lockfile) in place. [Error] when the file is
    missing or too small for the requested fault. *)
