(* Resilience tests: the deterministic fault injector, the lockstep
   differential vehicle, the graceful-degradation ladder, and the Vos
   robustness fixes.

   The load-bearing property: every chaos injection is semantics-
   preserving, so under any seed every workload must produce the same
   guest-visible behaviour (output bytes, exit code) and agree with the
   reference interpreter at every commit point. A livelock shows up as
   Out_of_fuel; a recovery bug shows up as a lockstep divergence with a
   structured diagnosis. *)

open Ia32
module C = Workloads.Common
module E = Ia32el.Engine
module L = Ia32el.Lockstep
module R = Harness.Resilience
module Inject = Harness.Inject

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let workloads : C.t list =
  Workloads.Spec_int.all @ Workloads.Spec_fp.all
  @ [ Workloads.Sysmark.office; Workloads.Sysmark.misalign_stress ]

let find_workload name = List.find (fun w -> w.C.name = name) workloads
let seeds = [ 0; 1; 2; 3; 4 ]

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Exit code of a lockstep run; fails the test on divergence (with the
   structured diagnosis), unhandled fault, or fuel exhaustion. *)
let lockstep_exit_code name (r : R.lockstep_result) =
  (match r.R.report.L.divergence with
  | Some d -> Alcotest.failf "%s diverged:@.%a" name (fun ppf -> L.pp_divergence ppf) d
  | None -> ());
  match r.R.report.L.outcome with
  | Some (E.Exited (code, _)) -> code
  | Some (E.Unhandled_fault (f, st)) ->
    Alcotest.failf "%s: unhandled %s at 0x%x" name (Fault.to_string f)
      st.State.eip
  | Some E.Out_of_fuel | None ->
    Alcotest.failf "%s: out of fuel (livelock under injection?)" name

(* ------------------------------------------------------------------ *)
(* Lockstep over every workload, clean and under injection seeds 0-4   *)
(* ------------------------------------------------------------------ *)

let lockstep_tests =
  List.map
    (fun w ->
      Alcotest.test_case w.C.name `Slow (fun () ->
          (* clean lockstep run: the baseline for guest-visible behaviour *)
          let base = R.run_lockstep w ~scale:1 in
          check int (w.C.name ^ ": clean exit code") 0
            (lockstep_exit_code w.C.name base);
          check bool (w.C.name ^ ": commit points compared") true
            (base.R.report.L.commits > 0);
          let injected_total = ref 0 in
          List.iter
            (fun seed ->
              let name = Printf.sprintf "%s/seed%d" w.C.name seed in
              let r = R.run_lockstep ~seed w ~scale:1 in
              check int (name ^ ": exit code") 0 (lockstep_exit_code name r);
              check bool (name ^ ": output byte-identical to uninjected")
                true
                (String.equal base.R.output r.R.output);
              match r.R.inject_stats with
              | Some s -> injected_total := !injected_total + Inject.total_injections s
              | None -> ())
            seeds;
          check bool (w.C.name ^ ": injector actually fired across seeds")
            true (!injected_total > 0)))
    workloads

(* ------------------------------------------------------------------ *)
(* SMC abort path: the running block modifies itself                    *)
(* ------------------------------------------------------------------ *)

let exit0 =
  Asm.
    [
      i (Insn.Mov (Insn.S32, Insn.R Insn.Eax, Insn.I 1));
      i (Insn.Mov (Insn.S32, Insn.R Insn.Ebx, Insn.I 0));
      i (Insn.Int_n 0x80);
    ]

let smc_abort_test =
  Alcotest.test_case "SMC abort: running block modifies itself" `Quick
    (fun () ->
      (* the store patches the imm32 of the mov ABOVE it in the same basic
         block, so the write lands on the currently running block:
         Smc_abort -> smc_pending flush -> precise restart at the next
         instruction, retranslation picks up the patched bytes *)
      let open Insn in
      let code =
        Asm.(
          [
            label "start";
            i (Mov (S32, R Ecx, I 4));
            label "loop";
            label "target";
            i (Mov (S32, R Eax, I 111));
            with_lab "target" (fun a ->
                Mov (S32, M (Insn.mem_abs (a + 1)), I 777));
            i (Dec (S32, R Ecx));
            jcc Ne "loop";
            with_lab "out" (fun a -> Mov (S32, M (Insn.mem_abs a), R Eax));
          ]
          @ exit0)
      in
      let image = Asm.build ~code ~data:Asm.[ label "out"; space 8 ] () in
      let mem = Memory.create () in
      let st = Asm.load ~writable_code:true image mem in
      let captured = ref None in
      let report =
        L.run ~fuel:10_000_000
          ~attach:(fun e -> captured := Some e)
          ~btlib:(module Btlib.Linuxsim)
          mem st
      in
      (match report.L.divergence with
      | Some d -> Alcotest.failf "diverged:@.%a" (fun ppf -> L.pp_divergence ppf) d
      | None -> ());
      (match report.L.outcome with
      | Some (E.Exited (0, _)) -> ()
      | _ -> Alcotest.fail "expected clean exit");
      let eng = Option.get !captured in
      check bool "SMC invalidation counted" true
        (eng.E.acct.Ia32el.Account.smc_invalidations > 0);
      check int "patched value executed after precise restart" 777
        (Memory.read32 mem (image.Asm.lookup "out")))

(* ------------------------------------------------------------------ *)
(* Degradation ladder: invalidation storm -> stage-2/3 -> interp-only   *)
(* ------------------------------------------------------------------ *)

let degradation_test =
  Alcotest.test_case "degradation ladder under invalidation storm" `Slow
    (fun () ->
      (* spurious invalidation on every block-boundary event: entries
         churn through retranslation until the ladder escalates them to
         stage-2/3 avoidance and then interpret-only; the SMC-storm
         detector degrades whole pages. The run must stay correct (zero
         lockstep divergences) and must terminate (no retranslation
         livelock). *)
      let inj =
        Inject.create ~rate_tos:0 ~rate_sse:0 ~rate_smc:1 ~rate_flush:0
          ~rate_squeeze:0 ~rate_transient:0 ~seed:0 ()
      in
      let w = find_workload "gzip" in
      let r =
        R.run_lockstep ~attach_extra:(fun e -> Inject.attach inj e) w ~scale:1
      in
      check int "exit code" 0 (lockstep_exit_code "gzip/storm" r);
      let eng = r.R.engine in
      check bool "spurious invalidations happened" true
        ((Inject.stats inj).Inject.smc_invalidations > 0);
      check bool "stage-2/3 avoidance escalation" true
        (Hashtbl.length eng.E.avoid_entries > 0
        && Hashtbl.length eng.E.stage2_entries > 0);
      check bool "entries degraded to interpret-only" true
        (eng.E.acct.Ia32el.Account.degrade_interp_entries > 0);
      check bool "SMC-storm page degradation fired" true
        (eng.E.acct.Ia32el.Account.degrade_smc_storms > 0))

(* ------------------------------------------------------------------ *)
(* A deliberately seeded translator bug must be caught by lockstep      *)
(* ------------------------------------------------------------------ *)

let seeded_bug_test =
  Alcotest.test_case "lockstep catches a seeded translator bug" `Quick
    (fun () ->
      (* guest: esi is set once and never touched again; a syscall per
         iteration gives lockstep a commit point per iteration. The
         "bug": at the 10th block-boundary event we silently corrupt the
         machine's canonical ESI — exactly the kind of wrong-but-running
         state a translator bug produces. Lockstep must flag the first
         commit point after the corruption, name the field, and carry a
         reproducer window. *)
      let open Insn in
      let code =
        Asm.(
          [
            label "start";
            i (Mov (S32, R Esi, I 0x1234));
            i (Mov (S32, R Ecx, I 40));
            label "loop";
          ]
          @ C.kernel_work 5
          @ [ i (Dec (S32, R Ecx)); jcc Ne "loop" ]
          @ exit0)
      in
      let image = Asm.build ~code ~data:[] () in
      let mem = Memory.create () in
      let st = Asm.load image mem in
      let events = ref 0 in
      let attach (e : E.t) =
        e.E.on_dispatch <-
          Some
            (fun _ ->
              incr events;
              if !events = 10 then
                Ipf.Machine.set32 e.E.machine
                  (Ia32el.Regs.gr_of_reg Insn.Esi)
                  0xBEEF)
      in
      let report =
        L.run ~fuel:10_000_000 ~attach ~btlib:(module Btlib.Linuxsim) mem st
      in
      match report.L.divergence with
      | None -> Alcotest.fail "seeded bug was NOT caught by lockstep"
      | Some d ->
        check bool "diagnosis names the first diverging commit point" true
          (d.L.commit_index >= 1);
        check bool "diagnosis names the corrupted field" true
          (List.exists (fun s -> contains s "esi") d.L.diffs);
        check bool "diagnosis carries a reproducer window" true
          (d.L.window <> []))

(* ------------------------------------------------------------------ *)
(* Vos robustness: atomic Write, Sbrk unmap, transient retry            *)
(* ------------------------------------------------------------------ *)

let vos_tests =
  let module S = Btlib.Syscall in
  let module V = Btlib.Vos in
  [
    Alcotest.test_case "write is all-or-nothing on a mid-buffer fault"
      `Quick (fun () ->
        let mem = Memory.create () in
        Memory.map mem ~addr:0x5000 ~len:Memory.page_size ~prot:Memory.prot_rw;
        let vos = V.create mem in
        let st = State.create mem in
        (* the buffer runs off the end of the mapped page: the fault hits
           after ~6 readable bytes, which must NOT appear in the output *)
        (match V.perform vos st (S.Write { buf = 0x5000 + 4090; len = 20 }) with
        | S.Ret v -> check int "returns -EFAULT" (Ia32.Word.mask32 (-14)) v
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        check int "no partial bytes visible" 0 (String.length (V.output vos));
        (* a fully readable buffer still works *)
        (match V.perform vos st (S.Write { buf = 0x5000; len = 4 }) with
        | S.Ret v -> check int "full write count" 4 v
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        check int "exactly the full write visible" 4
          (String.length (V.output vos)));
    Alcotest.test_case "negative sbrk unmaps the freed pages" `Quick
      (fun () ->
        let mem = Memory.create () in
        let vos = V.create mem in
        let st = State.create mem in
        let base = V.heap_base_default in
        (match V.perform vos st (S.Sbrk 8192) with
        | S.Ret v -> check int "sbrk returns old break" base v
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        check bool "grown pages mapped" true
          (Memory.is_mapped mem base && Memory.is_mapped mem (base + 4096));
        (match V.perform vos st (S.Sbrk (-8192)) with
        | S.Ret _ -> ()
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        check bool "freed pages unmapped" true
          ((not (Memory.is_mapped mem base))
          && not (Memory.is_mapped mem (base + 4096)));
        (* partial page at the new break survives a partial shrink *)
        (match V.perform vos st (S.Sbrk 8192) with
        | S.Ret _ -> ()
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        (match V.perform vos st (S.Sbrk (-4096 - 100)) with
        | S.Ret _ -> ()
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        check bool "page holding the new break stays mapped" true
          (Memory.is_mapped mem base);
        check bool "fully freed page unmapped" true
          (not (Memory.is_mapped mem (base + 4096))));
    Alcotest.test_case "transient syscall failures: bounded retry, \
                        guest-transparent" `Quick (fun () ->
        let mem = Memory.create () in
        let vos = V.create mem in
        let st = State.create mem in
        (* a hook that always fails: the OS must give up retrying after
           the bound and proceed anyway *)
        vos.V.transient_fault <- Some (fun _ -> true);
        let k0 = vos.V.kernel_cycles in
        (match V.perform vos st (S.Kernel_work 7) with
        | S.Ret v -> check int "service still succeeds" 0 v
        | S.Exited _ | S.Block -> Alcotest.fail "unexpected exit or block");
        check int "retries bounded" V.max_transient_retries
          vos.V.transient_retries;
        let backoff =
          (* 200 + 400 + 800 + 1600 with the default constants *)
          let rec sum k acc =
            if k >= V.max_transient_retries then acc
            else sum (k + 1) (acc + (V.transient_backoff_cycles lsl k))
          in
          sum 0 0
        in
        check int "backoff charged to kernel time" (backoff + 7)
          (vos.V.kernel_cycles - k0));
  ]

let () =
  Alcotest.run "ia32el-resilience"
    [
      ("vos", vos_tests);
      ("engine", [ smc_abort_test; degradation_test; seeded_bug_test ]);
      ("lockstep", lockstep_tests);
    ]
