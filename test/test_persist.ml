(* Persistent translation cache suite.

   The tentpole property: a warm start from a saved cache — and an AOT
   pre-translated one — is bit-identical in every observable (exit code,
   cycle counts, the full metrics snapshot) to the same run translating
   everything live, across the predecode x decode-cache configuration
   matrix, with real cache hits doing the work. On top: the robustness
   ladder — every disk-fault mode (bit flip, truncation, partial write,
   stale fingerprint, held lock) must degrade to retranslation with a
   structured diagnostic, never a crash, never a behaviour change; a
   single corrupt entry drops only itself. *)

module B = Workloads.Baselines
module C = Workloads.Common
module E = Ia32el.Engine
module I = Harness.Inject

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let configs =
  let d = Ia32el.Config.default in
  [
    ("default", d);
    ("no-predecode", { d with Ia32el.Config.enable_predecode = false });
    ("no-decode-cache", { d with Ia32el.Config.enable_decode_cache = false });
    ( "neither",
      {
        d with
        Ia32el.Config.enable_predecode = false;
        Ia32el.Config.enable_decode_cache = false;
      } );
  ]

let workload name =
  List.find
    (fun w -> w.C.name = name)
    (Workloads.Spec_int.all @ Workloads.Spec_fp.all)

(* the three cheapest real workloads; gzip heats into the hot phase *)
let matrix_workloads = [ "gzip"; "mgrid"; "art" ]

(* One engine run of a workload with a persist session attached over
   [store]; returns (exit code, full metrics snapshot, session). *)
let run_with ~config ?(verify = true) ?(readonly = false) w store =
  let sref = ref None in
  let r =
    B.run_el ~config
      ~attach:(fun e -> sref := Some (Persist.attach ~verify ~readonly store e))
      ~check_exit:false w ~scale:1
  in
  let m =
    match r.B.engine with
    | Some e -> Obs.Metrics.to_string (E.metrics e)
    | None -> Alcotest.fail "run_el returned no engine"
  in
  (r.B.exit_code, m, Option.get !sref)

let fresh_store ~config w =
  let image = w.C.build ~scale:1 ~wide:false in
  Persist.create_store
    ~image_hash:(Persist.image_hash image)
    ~config_fp:(Persist.config_fingerprint config)

let keys ~config w =
  let image = w.C.build ~scale:1 ~wide:false in
  (Persist.image_hash image, Persist.config_fingerprint config)

let tmp = Filename.temp_file "test_persist" ".tc"

let save_ok store =
  (try Sys.remove tmp with Sys_error _ -> ());
  (try Sys.remove (tmp ^ ".lock") with Sys_error _ -> ());
  match Persist.save store ~path:tmp with
  | [] -> ()
  | d :: _ -> Alcotest.failf "save failed: %s" (Fmt.str "%a" Ia32el.Bt_error.pp d)

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* warm == cold across the config matrix                               *)
(* ------------------------------------------------------------------ *)

let warm_case wname =
  List.map
    (fun (cname, config) ->
      Alcotest.test_case
        (Printf.sprintf "%s warm == cold [%s]" wname cname)
        `Quick
        (fun () ->
          let w = workload wname in
          let store = fresh_store ~config w in
          let code_c, m_cold, se_c = run_with ~config w store in
          check int "cold run recorded" (Persist.entry_count store)
            (Persist.stats se_c).Persist.recorded;
          (* save / load round trip *)
          save_ok store;
          let image_hash, config_fp = keys ~config w in
          let store2, diags = Persist.load ~path:tmp ~image_hash ~config_fp in
          check int "no load diagnostics" 0 (List.length diags);
          check int "round trip keeps every entry"
            (Persist.entry_count store)
            (Persist.entry_count store2);
          (* warm run over the reloaded store *)
          let code_w, m_warm, se_w = run_with ~config w store2 in
          check int "same exit code" code_c code_w;
          check string "bit-identical metrics (cycles included)" m_cold m_warm;
          let s = Persist.stats se_w in
          check bool "warm run hits the cache" true (s.Persist.hits > 0);
          check int "warm run misses nothing" 0 s.Persist.misses;
          check int "warm run rejects nothing" 0 s.Persist.rejects;
          check bool "cold translation cycles eliminated" true
            (s.Persist.eliminated_cold_cycles > 0)))
    configs

(* ------------------------------------------------------------------ *)
(* AOT sweep == cold                                                   *)
(* ------------------------------------------------------------------ *)

let aot_case wname =
  Alcotest.test_case (wname ^ " AOT sweep then warm == cold") `Quick
    (fun () ->
      let w = workload wname in
      let config = Ia32el.Config.default in
      (* the reference cold run *)
      let cold_store = fresh_store ~config w in
      let code_c, m_cold, _ = run_with ~config w cold_store in
      (* static sweep on a throwaway engine, as ia32el-compile does *)
      let store = fresh_store ~config w in
      let image = w.C.build ~scale:1 ~wide:false in
      let mem = Ia32.Memory.create () in
      let _st = Ia32.Asm.load image mem in
      let eng = E.create ~config ~btlib:(module Btlib.Linuxsim) mem in
      let se = Persist.attach store eng in
      let lo = image.Ia32.Asm.code_base in
      let hi = lo + String.length image.Ia32.Asm.code in
      let n =
        Persist.sweep se
          ~roots:(image.Ia32.Asm.entry :: List.map snd image.Ia32.Asm.labels)
          ~lo ~hi
      in
      check bool "sweep translated blocks" true (n > 0);
      save_ok store;
      let image_hash, config_fp = keys ~config w in
      let store2, diags = Persist.load ~path:tmp ~image_hash ~config_fp in
      check int "no load diagnostics" 0 (List.length diags);
      let code_w, m_warm, se_w = run_with ~config w store2 in
      check int "same exit code" code_c code_w;
      check string "bit-identical metrics after AOT" m_cold m_warm;
      check bool "AOT entries actually hit" true
        ((Persist.stats se_w).Persist.hits > 0))

(* ------------------------------------------------------------------ *)
(* robustness ladder                                                   *)
(* ------------------------------------------------------------------ *)

let fault_case fault =
  Alcotest.test_case
    (Fmt.str "fault %a degrades cleanly" I.pp_disk_fault fault)
    `Quick
    (fun () ->
      let w = workload "mgrid" in
      let config = Ia32el.Config.default in
      let store = fresh_store ~config w in
      let code_c, m_cold, _ = run_with ~config w store in
      save_ok store;
      (match I.apply_disk_fault ~path:tmp fault with
      | Ok () -> ()
      | Error m -> Alcotest.failf "fault injection failed: %s" m);
      let image_hash, config_fp = keys ~config w in
      let store2, diags = Persist.load ~path:tmp ~image_hash ~config_fp in
      (match fault with
      | I.Lock_held ->
        (* the lock blocks saving, not loading *)
        check int "no load diagnostics" 0 (List.length diags);
        check bool "save refuses while the lock is held" true
          (Persist.save store2 ~path:tmp <> [])
      | _ ->
        check bool "fault surfaced a structured diagnostic" true (diags <> []));
      let code_w, m_warm, _ = run_with ~config w store2 in
      check int "same exit code under the fault" code_c code_w;
      check string "bit-identical metrics under the fault" m_cold m_warm)

let one_bad_entry =
  Alcotest.test_case "one corrupt entry drops only itself" `Quick (fun () ->
      let w = workload "mgrid" in
      let config = Ia32el.Config.default in
      let store = fresh_store ~config w in
      let code_c, m_cold, _ = run_with ~config w store in
      let n = Persist.entry_count store in
      check bool "enough entries to corrupt one" true (n > 1);
      save_ok store;
      (* flip a byte inside the first entry frame's payload: the header
         is 40 bytes, a frame is tag + 4-byte length + payload *)
      let s = read_file tmp in
      let b = Bytes.of_string s in
      let off = 40 + 5 + 3 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
      write_file tmp (Bytes.to_string b);
      let image_hash, config_fp = keys ~config w in
      let store2, diags = Persist.load ~path:tmp ~image_hash ~config_fp in
      check bool "the bad entry is diagnosed" true (diags <> []);
      check int "only the bad entry is dropped" (n - 1)
        (Persist.entry_count store2);
      let code_w, m_warm, se_w = run_with ~config w store2 in
      check int "same exit code" code_c code_w;
      check string "bit-identical metrics" m_cold m_warm;
      let st = Persist.stats se_w in
      check bool "surviving entries still hit" true (st.Persist.hits > 0);
      check bool "the dropped entry retranslates live" true
        (st.Persist.misses + st.Persist.rejects > 0))

let readonly_case =
  Alcotest.test_case "readonly session records nothing" `Quick (fun () ->
      let w = workload "mgrid" in
      let config = Ia32el.Config.default in
      let store = fresh_store ~config w in
      let _, _, se = run_with ~config ~readonly:true w store in
      check int "nothing recorded" 0 (Persist.stats se).Persist.recorded;
      check int "store still empty" 0 (Persist.entry_count store))

let stale_image =
  Alcotest.test_case "cache of a different image is rejected whole" `Quick
    (fun () ->
      let w = workload "mgrid" in
      let config = Ia32el.Config.default in
      let store = fresh_store ~config w in
      let _ = run_with ~config w store in
      save_ok store;
      let _, config_fp = keys ~config w in
      let store2, diags =
        Persist.load ~path:tmp ~image_hash:1234L ~config_fp
      in
      check bool "staleness diagnosed" true (diags <> []);
      check int "no entry survives" 0 (Persist.entry_count store2))

(* The perf flags are part of the config fingerprint: a cache recorded
   with one fusion / hot-counter setting must be rejected whole when
   loaded under the flipped flag, and the run must fall back to fresh
   translation with the same observables. *)
let flag_mismatch (fname, flip) =
  Alcotest.test_case
    (Printf.sprintf "%s flip rejects the whole cache" fname)
    `Quick
    (fun () ->
      let w = workload "mgrid" in
      let config = Ia32el.Config.default in
      let store = fresh_store ~config w in
      let code_c, _, _ = run_with ~config w store in
      save_ok store;
      let flipped = flip config in
      check bool "fingerprint distinguishes the flag" true
        (Persist.config_fingerprint config
        <> Persist.config_fingerprint flipped);
      let image_hash, _ = keys ~config w in
      let store2, diags =
        Persist.load ~path:tmp ~image_hash
          ~config_fp:(Persist.config_fingerprint flipped)
      in
      check bool "mismatch surfaced a diagnostic" true (diags <> []);
      check int "no entry survives the flip" 0 (Persist.entry_count store2);
      (* fresh fallback still runs; the flags don't change observables *)
      let code_w, _, se_w = run_with ~config:flipped w store2 in
      check int "same exit code from the fresh fallback" code_c code_w;
      check int "nothing hits the rejected cache" 0
        (Persist.stats se_w).Persist.hits)

let flag_flips =
  [
    ( "enable_fusion",
      fun c ->
        { c with Ia32el.Config.enable_fusion = not c.Ia32el.Config.enable_fusion }
    );
    ( "enable_hot_counters",
      fun c ->
        {
          c with
          Ia32el.Config.enable_hot_counters =
            not c.Ia32el.Config.enable_hot_counters;
        } );
  ]

let () =
  Alcotest.run "persist"
    [
      ( "warm-start",
        List.concat_map warm_case matrix_workloads
        @ [ aot_case "gzip"; readonly_case ] );
      ( "robustness",
        List.map fault_case I.all_disk_faults
        @ [ one_bad_entry; stale_image ]
        @ List.map flag_mismatch flag_flips );
    ]
