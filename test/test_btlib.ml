(* Tests for the virtual-OS substrate: BTOS version handshake, syscall
   decoding per BTLib, Vos services, and guest exception delivery. *)

open Btlib

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let handshake_tests =
  let v maj min = { Btos.major = maj; minor = min } in
  [
    Alcotest.test_case "equal versions compatible" `Quick (fun () ->
        check bool "ok" true (Btos.handshake_ok ~btlib:(v 2 3) ~btgeneric:(v 2 3)));
    Alcotest.test_case "newer btlib minor compatible" `Quick (fun () ->
        check bool "ok" true (Btos.handshake_ok ~btlib:(v 2 9) ~btgeneric:(v 2 3)));
    Alcotest.test_case "older btlib minor rejected" `Quick (fun () ->
        check bool "no" false (Btos.handshake_ok ~btlib:(v 2 1) ~btgeneric:(v 2 3)));
    Alcotest.test_case "major mismatch rejected both ways" `Quick (fun () ->
        check bool "no" false (Btos.handshake_ok ~btlib:(v 1 9) ~btgeneric:(v 2 0));
        check bool "no" false (Btos.handshake_ok ~btlib:(v 3 0) ~btgeneric:(v 2 9)));
    Alcotest.test_case "init accepts shipped btlibs" `Quick (fun () ->
        ignore (Btos.init (module Linuxsim));
        ignore (Btos.init (module Winsim)));
    Alcotest.test_case "init rejects ancient btlib" `Quick (fun () ->
        let module Old = struct
          include Linuxsim

          let version = { Btos.major = 1; minor = 0 }
        end in
        try
          ignore (Btos.init (module Old));
          Alcotest.fail "expected Version_mismatch"
        with Btos.Version_mismatch _ -> ());
  ]

let fresh_state () =
  let mem = Ia32.Memory.create () in
  Ia32.Memory.map mem ~addr:0x1000 ~len:0x10000 ~prot:Ia32.Memory.prot_rw;
  let st = Ia32.State.create mem in
  Ia32.State.set32 st Ia32.Insn.Esp 0x10000;
  (Vos.create mem, st)

let set32 = Ia32.State.set32
let get32 = Ia32.State.get32

let syscall_decode_tests =
  [
    Alcotest.test_case "linuxsim exit convention" `Quick (fun () ->
        let _, st = fresh_state () in
        set32 st Ia32.Insn.Eax 1;
        set32 st Ia32.Insn.Ebx 42;
        match Linuxsim.decode_syscall st with
        | Syscall.Exit 42 -> ()
        | c -> Alcotest.failf "decoded %s" (Fmt.str "%a" Syscall.pp c));
    Alcotest.test_case "winsim exit convention differs" `Quick (fun () ->
        let _, st = fresh_state () in
        set32 st Ia32.Insn.Eax 0x01;
        set32 st Ia32.Insn.Edx 7;
        match Winsim.decode_syscall st with
        | Syscall.Exit 7 -> ()
        | c -> Alcotest.failf "decoded %s" (Fmt.str "%a" Syscall.pp c));
    Alcotest.test_case "vectors differ" `Quick (fun () ->
        check int "linux" 0x80 Linuxsim.syscall_vector;
        check int "win" 0x2E Winsim.syscall_vector);
    Alcotest.test_case "unknown syscall" `Quick (fun () ->
        let _, st = fresh_state () in
        set32 st Ia32.Insn.Eax 9999;
        match Linuxsim.decode_syscall st with
        | Syscall.Unknown 9999 -> ()
        | _ -> Alcotest.fail "expected Unknown");
  ]

let vos_tests =
  [
    Alcotest.test_case "sbrk grows mapped heap" `Quick (fun () ->
        let vos, st = fresh_state () in
        (match Vos.perform vos st (Syscall.Sbrk 8192) with
        | Syscall.Ret base ->
          check int "base" Vos.heap_base_default base;
          Ia32.Memory.write32 st.Ia32.State.mem base 7;
          check int "usable" 7 (Ia32.Memory.read32 st.Ia32.State.mem base)
        | _ -> Alcotest.fail "ret");
        match Vos.perform vos st (Syscall.Sbrk 0) with
        | Syscall.Ret brk -> check int "brk moved" (Vos.heap_base_default + 8192) brk
        | _ -> Alcotest.fail "ret");
    Alcotest.test_case "sbrk over limit fails" `Quick (fun () ->
        let vos, st = fresh_state () in
        match Vos.perform vos st (Syscall.Sbrk 0x10000000) with
        | Syscall.Ret v -> check int "ENOMEM" (Ia32.Word.mask32 (-12)) v
        | _ -> Alcotest.fail "ret");
    Alcotest.test_case "write captures output" `Quick (fun () ->
        let vos, st = fresh_state () in
        Ia32.Memory.load_bytes st.Ia32.State.mem 0x1000 "hi!";
        (match Vos.perform vos st (Syscall.Write { buf = 0x1000; len = 3 }) with
        | Syscall.Ret 3 -> ()
        | _ -> Alcotest.fail "ret");
        check Alcotest.string "output" "hi!" (Vos.output vos));
    Alcotest.test_case "exit records code" `Quick (fun () ->
        let vos, st = fresh_state () in
        (match Vos.perform vos st (Syscall.Exit 3) with
        | Syscall.Exited 3 -> ()
        | _ -> Alcotest.fail "exited");
        check (Alcotest.option int) "code" (Some 3) vos.Vos.exit_code);
    Alcotest.test_case "kernel and idle accounting" `Quick (fun () ->
        let vos, st = fresh_state () in
        ignore (Vos.perform vos st (Syscall.Kernel_work 500));
        ignore (Vos.perform vos st (Syscall.Idle 100));
        check int "kernel" 500 vos.Vos.kernel_cycles;
        check int "idle" 100 vos.Vos.idle_cycles);
    Alcotest.test_case "unhandled exception kills" `Quick (fun () ->
        let vos, st = fresh_state () in
        match Vos.deliver_exception vos st Ia32.Fault.Divide_error with
        | Vos.Unhandled Ia32.Fault.Divide_error -> ()
        | _ -> Alcotest.fail "expected unhandled");
    Alcotest.test_case "handler receives conventional frame" `Quick (fun () ->
        let vos, st = fresh_state () in
        ignore (Vos.perform vos st (Syscall.Signal { vector = 14; handler = 0x5000 }));
        st.Ia32.State.eip <- 0x4444;
        let esp0 = get32 st Ia32.Insn.Esp in
        (match
           Vos.deliver_exception vos st
             (Ia32.Fault.Page_fault (0xABCD, Ia32.Fault.Write))
         with
        | Vos.Resumed -> ()
        | _ -> Alcotest.fail "expected resumed");
        check int "eip = handler" 0x5000 st.Ia32.State.eip;
        let esp = get32 st Ia32.Insn.Esp in
        check int "3 words pushed" (esp0 - 12) esp;
        check int "fault addr" 0xABCD (Ia32.Memory.read32 st.Ia32.State.mem esp);
        check int "vector" 14 (Ia32.Memory.read32 st.Ia32.State.mem (esp + 4));
        check int "return eip" 0x4444 (Ia32.Memory.read32 st.Ia32.State.mem (esp + 8)));
    Alcotest.test_case "signal(0) unregisters" `Quick (fun () ->
        let vos, st = fresh_state () in
        ignore (Vos.perform vos st (Syscall.Signal { vector = 0; handler = 0x5000 }));
        ignore (Vos.perform vos st (Syscall.Signal { vector = 0; handler = 0 }));
        match Vos.deliver_exception vos st Ia32.Fault.Divide_error with
        | Vos.Unhandled _ -> ()
        | _ -> Alcotest.fail "expected unhandled");
  ]

(* Journal revert across a negative-sbrk unmap / positive-sbrk remap
   cycle: the epoch must restore the freed page's pre-image bytes AND
   its protection, not just remap it. *)
let journal_sbrk_tests =
  let expect_ret c = function
    | Syscall.Ret _ -> ()
    | r -> Alcotest.failf "%s: unexpected %s" c (Fmt.str "%a" Syscall.pp_result r)
  in
  [
    Alcotest.test_case "journal revert x negative sbrk" `Quick (fun () ->
        let vos, st = fresh_state () in
        let mem = st.Ia32.State.mem in
        let p0 = Vos.heap_base_default in
        let p1 = Vos.heap_base_default + 4096 in
        expect_ret "grow" (Vos.perform vos st (Syscall.Sbrk 8192));
        Ia32.Memory.write8 mem p0 0xAB;
        Ia32.Memory.write8 mem p1 0xCD;
        Ia32.Memory.Journal.push mem;
        (* shrink: the freed page unmaps, stale accesses fault *)
        expect_ret "shrink" (Vos.perform vos st (Syscall.Sbrk (-4096)));
        check (Alcotest.option Alcotest.bool) "freed page unmapped" None
          (Option.map (fun _ -> true) (Ia32.Memory.prot_of mem p1));
        (try
           ignore (Ia32.Memory.read8 mem p1);
           Alcotest.fail "stale heap read did not fault"
         with Ia32.Fault.Fault _ -> ());
        (* re-grow: the page comes back zeroed, then diverges *)
        expect_ret "regrow" (Vos.perform vos st (Syscall.Sbrk 4096));
        check int "remapped page is zero" 0 (Ia32.Memory.read8 mem p1);
        Ia32.Memory.write8 mem p1 0x55;
        Ia32.Memory.protect mem ~addr:p1 ~len:4096
          ~prot:Ia32.Memory.prot_rx;
        (* revert: pre-image bytes and protection both come back *)
        let touched = Ia32.Memory.Journal.revert mem in
        check bool "epoch touched pages" true (touched <> []);
        check int "kept page pre-image" 0xAB (Ia32.Memory.read8 mem p0);
        check int "freed page pre-image" 0xCD (Ia32.Memory.read8 mem p1);
        (match Ia32.Memory.prot_of mem p1 with
        | Some p ->
          check bool "protection restored to rw"
            true
            (p.Ia32.Memory.read && p.Ia32.Memory.write
           && not p.Ia32.Memory.exec)
        | None -> Alcotest.fail "freed page not restored to mapped"));
  ]

let () =
  Alcotest.run "btlib"
    [
      ("handshake", handshake_tests);
      ("syscall-decode", syscall_decode_tests);
      ("vos", vos_tests);
      ("journal-sbrk", journal_sbrk_tests);
    ]
