(* Shape-sanity checks over the Figures drivers at scale 1: the claims
   under test are structural (row counts, percentages summing to 100,
   hot code dominating SPEC) rather than exact cycle values, so these
   run in `dune runtest` without pinning the cost model. *)

module F = Harness.Figures

let check = Alcotest.check
let checkb = check Alcotest.bool

let sum5 (h, c, o, x, i) = h +. c +. o +. x +. i

let each5 f (h, c, o, x, i) =
  List.iter2 f [ "hot"; "cold"; "overhead"; "other"; "idle" ] [ h; c; o; x; i ]

let test_fig5_shape () =
  let rows, geomean = F.fig5 ~scale:1 () in
  check Alcotest.int "one row per SPEC INT benchmark" 12 (List.length rows);
  List.iter
    (fun (r : F.fig5_row) ->
      checkb (r.F.name ^ " el cycles positive") true (r.F.el_cycles > 0);
      checkb (r.F.name ^ " native cycles positive") true
        (r.F.native_cycles > 0);
      checkb (r.F.name ^ " score sane") true
        (r.F.score > 10.0 && r.F.score < 400.0);
      checkb (r.F.name ^ " paper value recorded") true (r.F.paper <> None))
    rows;
  let names = List.map (fun (r : F.fig5_row) -> r.F.name) rows in
  check Alcotest.int "benchmark names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  checkb "geomean in a plausible band" true (geomean > 20.0 && geomean < 200.0)

let test_fig6_shape () =
  let d = F.fig6 ~scale:1 () in
  checkb "components sum to 100%" true (abs_float (sum5 d -. 100.0) < 0.6);
  each5
    (fun name v -> checkb (name ^ " non-negative") true (v >= 0.0))
    d;
  let hot, _, _, _, _ = d in
  checkb "hot code dominates SPEC (paper: ~95%)" true (hot > 50.0)

let test_fig7_shape () =
  let d = F.fig7 ~scale:1 () in
  checkb "components sum to 100%" true (abs_float (sum5 d -. 100.0) < 0.6);
  each5
    (fun name v -> checkb (name ^ " non-negative") true (v >= 0.0))
    d;
  (* the interactive workload spends materially less time in hot code
     than SPEC does (paper: 46% vs 95%) *)
  let hot6, _, _, _, _ = F.fig6 ~scale:1 () in
  let hot7, _, _, _, _ = d in
  checkb "sysmark less hot than SPEC" true (hot7 < hot6)

let () =
  Alcotest.run "harness"
    [
      ( "figures",
        [
          Alcotest.test_case "fig5-shape" `Quick test_fig5_shape;
          Alcotest.test_case "fig6-shape" `Quick test_fig6_shape;
          Alcotest.test_case "fig7-shape" `Quick test_fig7_shape;
        ] );
    ]
