(* Differential tests: every program runs both on the reference interpreter
   (golden model) and under the IA-32 EL translator on the IPF machine; the
   final architectural states, memory, and exception behaviour must match.
   Plus targeted tests for the engine mechanisms (chaining, heat counters,
   misalignment stages, SMC, speculation recoveries, precise exceptions). *)

open Ia32
open Ia32el

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Differential runner                                                  *)
(* ------------------------------------------------------------------ *)

(* Epilogue: dump registers + eflags to [dump], then exit(0). *)
let epilogue =
  let open Asm in
  let open Insn in
  List.concat
    [
      List.mapi
        (fun k r ->
          with_lab "dump" (fun a -> Mov (S32, M (mem_abs (a + (4 * k))), R r)))
        [ Eax; Ecx; Edx; Ebx; Esp; Ebp; Esi; Edi ];
      [
        i Pushfd;
        with_lab "dump" (fun a -> Pop (M (mem_abs (a + 32))));
        i (Mov (S32, R Eax, I 1));
        i (Mov (S32, R Ebx, I 0));
        i (Int_n 0x80);
      ];
    ]

let dump_space = Asm.[ label "dump"; space 64 ]

(* Logical x87 equality: the translator's TOS-rotation recovery can leave
   the stack at a different absolute TOP with identical ST(i) contents;
   that difference is only observable through FNSTSW's TOP field, which the
   paper's recovery also accepts (see DESIGN.md). Now lives in the ia32
   library so the lockstep vehicle shares it. *)
let fpu_logical_equal = Fpu.logical_equal

type side = {
  outcome : [ `Exit of int | `Fault of Fault.t ];
  st : State.t;
  data_bytes : string;
  stack_bytes : string;
}

let data_len image = max 64 (String.length image.Asm.data + 64)

let run_ref ?(writable_code = false) image =
  let mem = Memory.create () in
  let st = Asm.load ~writable_code image mem in
  let vos = Btlib.Vos.create mem in
  match Refvehicle.run ~fuel:2_000_000 ~btlib:(module Btlib.Linuxsim) vos st with
  | Refvehicle.Exited (code, st), _ ->
    {
      outcome = `Exit code;
      st;
      data_bytes = Memory.dump_bytes mem image.Asm.data_base (data_len image);
      stack_bytes = Memory.dump_bytes mem (image.Asm.stack_top - 256) 256;
    }
  | Refvehicle.Unhandled_fault (f, st), _ ->
    {
      outcome = `Fault f;
      st;
      data_bytes = Memory.dump_bytes mem image.Asm.data_base (data_len image);
      stack_bytes = Memory.dump_bytes mem (image.Asm.stack_top - 256) 256;
    }
  | Refvehicle.Out_of_fuel, _ -> Alcotest.fail "reference: out of fuel"

let run_el ?(writable_code = false) ?(config = Config.cold_only) image =
  let mem = Memory.create () in
  let st = Asm.load ~writable_code image mem in
  let eng = Engine.create ~config ~btlib:(module Btlib.Linuxsim) mem in
  match Engine.run ~fuel:20_000_000 eng st with
  | Engine.Exited (code, st) ->
    ( {
        outcome = `Exit code;
        st;
        data_bytes = Memory.dump_bytes mem image.Asm.data_base (data_len image);
        stack_bytes = Memory.dump_bytes mem (image.Asm.stack_top - 256) 256;
      },
      eng )
  | Engine.Unhandled_fault (f, st) ->
    ( {
        outcome = `Fault f;
        st;
        data_bytes = Memory.dump_bytes mem image.Asm.data_base (data_len image);
        stack_bytes = Memory.dump_bytes mem (image.Asm.stack_top - 256) 256;
      },
      eng )
  | Engine.Out_of_fuel -> Alcotest.fail "engine: out of fuel"

let hex_diff name a b =
  if a <> b then begin
    let n = min (String.length a) (String.length b) in
    let k = ref (-1) in
    for i = n - 1 downto 0 do
      if a.[i] <> b.[i] then k := i
    done;
    Alcotest.failf "%s differs at offset %d: ref %02x vs el %02x" name !k
      (Char.code a.[!k]) (Char.code b.[!k])
  end

let compare_sides ?(compare_flags = true) name (r : side) (e : side) =
  (match (r.outcome, e.outcome) with
  | `Exit a, `Exit b -> check int (name ^ ": exit code") a b
  | `Fault a, `Fault b ->
    check bool
      (Printf.sprintf "%s: faults match (%s vs %s)" name (Fault.to_string a)
         (Fault.to_string b))
      true (Fault.equal a b)
  | `Exit _, `Fault f ->
    Alcotest.failf "%s: ref exited but el faulted with %s" name (Fault.to_string f)
  | `Fault f, `Exit _ ->
    Alcotest.failf "%s: ref faulted with %s but el exited" name (Fault.to_string f));
  hex_diff (name ^ ": data") r.data_bytes e.data_bytes;
  hex_diff (name ^ ": stack") r.stack_bytes e.stack_bytes;
  check int (name ^ ": eip") r.st.State.eip e.st.State.eip;
  List.iter
    (fun reg ->
      check int
        (Printf.sprintf "%s: %s" name (Insn.reg_name reg))
        (State.get32 r.st reg) (State.get32 e.st reg))
    Insn.all_regs;
  if compare_flags then begin
    check bool (name ^ ": cf") r.st.State.cf e.st.State.cf;
    check bool (name ^ ": zf") r.st.State.zf e.st.State.zf;
    check bool (name ^ ": sf") r.st.State.sf e.st.State.sf;
    check bool (name ^ ": of") r.st.State.of_ e.st.State.of_;
    check bool (name ^ ": pf") r.st.State.pf e.st.State.pf;
    check bool (name ^ ": af") r.st.State.af e.st.State.af;
    check bool (name ^ ": df") r.st.State.df e.st.State.df
  end;
  check bool (name ^ ": fpu") true (fpu_logical_equal r.st.State.fpu e.st.State.fpu);
  for k = 0 to 7 do
    check bool
      (Printf.sprintf "%s: xmm%d" name k)
      true
      (State.get_xmm r.st k = State.get_xmm e.st k)
  done

let diff ?writable_code ?config ?compare_flags name code data =
  let image =
    Asm.build ~code:(Asm.label "start" :: (code @ epilogue)) ~data:(data @ dump_space) ()
  in
  let r = run_ref ?writable_code image in
  let e, _ = run_el ?writable_code ?config image in
  compare_sides ?compare_flags name r e

(* also run with the two-phase config to exercise hot paths later *)
let diff_both ?writable_code ?compare_flags name code data =
  diff ?writable_code ~config:Config.cold_only ?compare_flags name code data;
  diff ?writable_code ~config:Config.default ?compare_flags
    (name ^ " (two-phase)") code data

(* ------------------------------------------------------------------ *)
(* Program library                                                     *)
(* ------------------------------------------------------------------ *)

let a32 = Asm.i
let open_insn = ()
let _ = open_insn

(* capture all six arithmetic flags into memory after the preceding op *)
let capture_flags tag =
  let open Asm in
  let open Insn in
  List.concat
    (List.mapi
       (fun k c ->
         [ with_lab "flags" (fun a -> Setcc (c, M (mem_abs (a + (8 * tag) + k)))) ])
       [ O; B; E; S; P; Ae ])

let flags_space = Asm.[ label "flags"; space 256 ]

let int_programs =
  let open Asm in
  let open Insn in
  [
    ( "add carry/overflow matrix",
      List.concat
        [
          [ a32 (Mov (S32, R Eax, I 0xFFFFFFFF)); a32 (Alu (Add, S32, R Eax, I 1)) ];
          capture_flags 0;
          [ a32 (Mov (S32, R Ebx, I 0x7FFFFFFF)); a32 (Alu (Add, S32, R Ebx, I 1)) ];
          capture_flags 1;
          [ a32 (Mov (S32, R Ecx, I 5)); a32 (Alu (Add, S32, R Ecx, I (-7 land 0xFFFFFFFF))) ];
          capture_flags 2;
        ],
      flags_space );
    ( "sub/sbb/adc chains",
      List.concat
        [
          [
            a32 (Mov (S32, R Eax, I 3));
            a32 (Mov (S32, R Edx, I 10));
            a32 (Alu (Sub, S32, R Eax, I 5));
          ];
          capture_flags 0;
          [ a32 (Alu (Sbb, S32, R Edx, I 2)) ];
          capture_flags 1;
          [ a32 (Alu (Adc, S32, R Edx, I 0xFFFFFFFF)) ];
          capture_flags 2;
          [ a32 (Alu (Cmp, S32, R Edx, R Eax)) ];
          capture_flags 3;
        ],
      flags_space );
    ( "logic ops and AF",
      List.concat
        [
          [
            a32 (Mov (S32, R Eax, I 0xF0F0F0F0));
            a32 (Alu (And, S32, R Eax, I 0xFF00FF00));
          ];
          capture_flags 0;
          [ a32 (Alu (Xor, S32, R Eax, R Eax)) ];
          capture_flags 1;
          [ a32 (Mov (S32, R Ebx, I 0x80000000)); a32 (Alu (Or, S32, R Ebx, I 1)) ];
          capture_flags 2;
          [ a32 (Test (S32, R Ebx, I 0x80000000)) ];
          capture_flags 3;
        ],
      flags_space );
    ( "inc/dec/neg flag preservation",
      List.concat
        [
          [
            a32 (Mov (S32, R Eax, I 0xFFFFFFFF));
            a32 (Alu (Add, S32, R Eax, I 1)); (* CF=1 *)
            a32 (Inc (S32, R Eax));
          ];
          capture_flags 0;
          (* CF must still be 1 *)
          [ a32 (Dec (S32, R Eax)); a32 (Dec (S32, R Eax)) ];
          capture_flags 1;
          [ a32 (Mov (S32, R Ecx, I 7)); a32 (Neg (S32, R Ecx)) ];
          capture_flags 2;
          [ a32 (Mov (S32, R Edx, I 0)); a32 (Neg (S32, R Edx)) ];
          capture_flags 3;
          [ a32 (Not (S32, R Ecx)) ];
        ],
      flags_space );
    ( "8/16-bit subregisters",
      [
        a32 (Mov (S32, R Eax, I 0x11223344));
        a32 (Mov (S8, R Esp (* ah *), I 0xAA));
        a32 (Alu (Add, S8, R Eax (* al *), I 0x77));
        a32 (Mov (S32, R Ebx, I 0xDEAD0000));
        a32 (Alu (Add, S16, R Ebx, I 0xBEEF));
        a32 (Movzx (S8, Ecx, R Esp));
        a32 (Movsx (S8, Edx, R Esp));
        a32 (Movzx (S16, Esi, R Ebx));
        a32 (Movsx (S16, Edi, R Ebx));
      ],
      [] );
    ( "shifts immediate",
      List.concat
        [
          [ a32 (Mov (S32, R Eax, I 0x80000001)); a32 (Shift (Shl, S32, R Eax, Amt_imm 1)) ];
          capture_flags 0;
          [ a32 (Mov (S32, R Ebx, I 0x80000000)); a32 (Shift (Sar, S32, R Ebx, Amt_imm 4)) ];
          capture_flags 1;
          [ a32 (Mov (S32, R Ecx, I 0x12345678)); a32 (Shift (Ror, S32, R Ecx, Amt_imm 8)) ];
          capture_flags 2;
          [ a32 (Mov (S32, R Edx, I 0x12345678)); a32 (Shift (Rol, S32, R Edx, Amt_imm 4)) ];
          capture_flags 3;
          [ a32 (Mov (S32, R Esi, I 0xFF)); a32 (Shift (Shr, S32, R Esi, Amt_imm 3)) ];
          capture_flags 4;
          [ a32 (Mov (S16, R Edi, I 0x8001)); a32 (Shift (Shl, S16, R Edi, Amt_imm 1)) ];
          capture_flags 5;
        ],
      flags_space );
    ( "shifts by cl including zero",
      List.concat
        [
          [
            a32 (Mov (S32, R Eax, I 0xABCD1234));
            a32 (Mov (S32, R Ecx, I 0)); (* zero count: flags unchanged *)
            a32 (Alu (Cmp, S32, R Eax, R Eax)); (* set ZF *)
            a32 (Shift (Shl, S32, R Eax, Amt_cl));
          ];
          capture_flags 0;
          [
            a32 (Mov (S32, R Ecx, I 36)); (* masked to 4 *)
            a32 (Shift (Shr, S32, R Eax, Amt_cl));
          ];
          capture_flags 1;
          [ a32 (Mov (S32, R Ecx, I 31)); a32 (Shift (Sar, S32, R Eax, Amt_cl)) ];
          capture_flags 2;
          [
            a32 (Mov (S32, R Eax, I 0x12345678));
            a32 (Mov (S32, R Ecx, I 12));
            a32 (Shift (Rol, S32, R Eax, Amt_cl));
          ];
          capture_flags 3;
        ],
      flags_space );
    ( "shld/shrd",
      List.concat
        [
          [
            a32 (Mov (S32, R Eax, I 0x12345678));
            a32 (Mov (S32, R Ebx, I 0x9ABCDEF0));
            a32 (Shld (R Eax, Ebx, Amt_imm 8));
          ];
          capture_flags 0;
          [
            a32 (Mov (S32, R Ecx, I 4));
            a32 (Shrd (R Ebx, Eax, Amt_cl));
          ];
          capture_flags 1;
        ],
      flags_space );
    ( "mul/imul/div/idiv",
      List.concat
        [
          [
            a32 (Mov (S32, R Eax, I 123456));
            a32 (Mov (S32, R Ebx, I 789));
            a32 (Mul1 (S32, R Ebx));
          ];
          capture_flags 0;
          [
            a32 (Mov (S32, R Ecx, I 1000));
            a32 (Div (S32, R Ecx));
            a32 (Mov (S32, R Esi, R Eax));
            a32 (Mov (S32, R Edi, R Edx));
            a32 (Mov (S32, R Eax, I (-50000 land 0xFFFFFFFF)));
            a32 Cdq;
            a32 (Mov (S32, R Ecx, I 7));
            a32 (Idiv (S32, R Ecx));
          ];
          [
            a32 (Mov (S32, R Ebx, R Eax));
            a32 (Mov (S32, R Eax, I 0x10000));
            a32 (Imul_rr (Eax, R Eax));
          ];
          capture_flags 1;
          [ a32 (Imul_rri (Edx, R Ebx, 100)) ];
          capture_flags 2;
          [
            a32 (Mov (S32, R Eax, I 0xFF));
            a32 (Mov (S8, R Ebx, I 16));
            a32 (Mul1 (S8, R Ebx));
          ];
          [
            a32 (Mov (S16, R Eax, I 30000));
            a32 (Mov (S16, R Edx, I 0));
            a32 (Mov (S16, R Ecx, I 256));
            a32 (Div (S16, R Ecx));
          ];
        ],
      flags_space );
    ( "lea forms",
      [
        a32 (Mov (S32, R Ebx, I 0x1000));
        a32 (Mov (S32, R Ecx, I 0x20));
        a32 (Lea (Eax, Insn.mem_full Ebx Ecx 4 0x12));
        a32 (Lea (Edx, Insn.mem_bd Ebx (-8)));
        a32 (Lea (Esi, { base = None; index = Some (Ecx, 8); disp = 0x100 }));
        a32 (Lea (Edi, Insn.mem_b Ebx));
      ],
      [] );
    ( "memory addressing and rmw",
      [
        mov_ri_lab Ebx "buf";
        a32 (Mov (S32, M (Insn.mem_b Ebx), I 0x11111111));
        a32 (Mov (S32, M (Insn.mem_bd Ebx 4), I 0x22222222));
        a32 (Alu (Add, S32, M (Insn.mem_b Ebx), I 0x11));
        a32 (Mov (S32, R Ecx, I 1));
        a32 (Alu (Sub, S32, M { base = Some Ebx; index = Some (Ecx, 4); disp = 0 }, I 2));
        a32 (Inc (S32, M (Insn.mem_b Ebx)));
        a32 (Shift (Shl, S32, M (Insn.mem_bd Ebx 4), Amt_imm 1));
        a32 (Xchg (S32, M (Insn.mem_b Ebx), Ecx));
        a32 (Mov (S8, M (Insn.mem_bd Ebx 9), I 0x5A));
        a32 (Mov (S16, M (Insn.mem_bd Ebx 12), I 0xBEEF));
      ],
      Asm.[ label "buf"; space 32 ] );
    ( "fib via call/ret",
      [
        a32 (Mov (S32, R Eax, I 10));
        call "fib";
        jmp "done";
        label "fib";
        (* fib(eax) -> ebx iteratively *)
        a32 (Mov (S32, R Ebx, I 0));
        a32 (Mov (S32, R Ecx, I 1));
        label "floop";
        a32 (Test (S32, R Eax, R Eax));
        jcc E "fdone";
        a32 (Mov (S32, R Edx, R Ebx));
        a32 (Alu (Add, S32, R Edx, R Ecx));
        a32 (Mov (S32, R Ebx, R Ecx));
        a32 (Mov (S32, R Ecx, R Edx));
        a32 (Dec (S32, R Eax));
        jmp "floop";
        label "fdone";
        a32 (Ret 0);
        label "done";
      ],
      [] );
    ( "jump table",
      [
        a32 (Mov (S32, R Ecx, I 1));
        with_lab "table" (fun a ->
            Jmp_ind (M { base = None; index = Some (Ecx, 4); disp = a }));
        label "case0";
        a32 (Mov (S32, R Eax, I 100));
        jmp "out";
        label "case1";
        a32 (Mov (S32, R Eax, I 200));
        jmp "out";
        label "out";
      ],
      Asm.[ label "table"; dd_lab "case0"; dd_lab "case1" ] );
    ( "setcc/cmov battery",
      List.concat
        (List.map
           (fun (k, c) ->
             [
               a32 (Mov (S32, R Eax, I 5));
               a32 (Alu (Cmp, S32, R Eax, I 9));
               with_lab "flags" (fun a -> Setcc (c, M (mem_abs (a + k))));
               a32 (Mov (S32, R Edx, I 0));
               a32 (Cmovcc (c, Edx, R Eax));
               with_lab "flags" (fun a -> Mov (S32, M (mem_abs (a + 64 + (4 * k))), R Edx));
             ])
           (List.mapi (fun k c -> (k, c))
              [ O; No; B; Ae; E; Ne; Be; A; S; Ns; P; Np; L; Ge; Le; G ])),
      flags_space );
    ( "string ops",
      [
        mov_ri_lab Esi "src";
        mov_ri_lab Edi "dst";
        a32 (Mov (S32, R Ecx, I 4));
        a32 Cld;
        a32 (Movs (S32, Rep));
        mov_ri_lab Edi "dst2";
        a32 (Mov (S32, R Eax, I 0xAB));
        a32 (Mov (S32, R Ecx, I 7));
        a32 (Stos (S8, Rep));
        mov_ri_lab Esi "src";
        a32 (Lods (S16, No_rep));
        a32 (Mov (S32, R Ebp, R Eax));
        (* scasb for the 'o' in "hello" *)
        mov_ri_lab Edi "src";
        a32 (Mov (S32, R Ecx, I 16));
        a32 (Mov (S8, R Eax, I (Char.code 'o')));
        a32 (Scas (S8, Repne));
        (* backward copy *)
        a32 Std;
        mov_ri_lab Esi "src";
        a32 (Alu (Add, S32, R Esi, I 15));
        mov_ri_lab Edi "dst3";
        a32 (Alu (Add, S32, R Edi, I 15));
        a32 (Mov (S32, R Ecx, I 16));
        a32 (Movs (S8, Rep));
        a32 Cld;
      ],
      Asm.
        [
          label "src";
          raw "hello world!!...";
          label "dst";
          space 16;
          label "dst2";
          space 8;
          label "dst3";
          space 16;
        ] );
    ( "pushfd/popfd",
      [
        a32 (Alu (Cmp, S32, R Eax, R Eax));
        a32 Pushfd;
        a32 (Alu (Add, S32, R Eax, I 1));
        a32 (Alu (Cmp, S32, R Eax, I 999));
        a32 Popfd;
      ],
      [] );
    ( "push pop variants",
      [
        a32 (Mov (S32, R Eax, I 0x1234));
        a32 (Push (R Eax));
        a32 (Push (I 0x77));
        mov_ri_lab Ebx "buf";
        a32 (Push (M (Insn.mem_b Ebx)));
        a32 (Pop (R Ecx));
        a32 (Pop (M (Insn.mem_bd Ebx 4)));
        a32 (Pop (R Edx));
      ],
      Asm.[ label "buf"; dd 0xFEEDFACE; space 12 ] );
  ]

let x87_programs =
  let open Asm in
  let open Insn in
  [
    ( "x87 basic arithmetic",
      [
        with_lab "a" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        with_lab "b" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp (Fop_st0_st (FAdd, 1)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, false)));
        a32 (Fp (Fop_st_st0 (FMul, 1, true)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 8), true)));
      ],
      [ label "a"; df64 1.5; label "b"; df64 2.25; label "out"; space 16 ] );
    ( "x87 fxch patterns",
      [
        a32 (Fp Fld1);
        a32 (Fp Fldz);
        with_lab "c" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp (Fxch 2));
        a32 (Fp (Fop_st0_st (FSub, 1)));
        a32 (Fp (Fxch 1));
        a32 (Fp (Fop_st_st0 (FDiv, 2, false)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 8), true)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 16), true)));
      ],
      [ label "c"; df64 8.0; label "out"; space 24 ] );
    ( "fild/fist rounding",
      [
        with_lab "n" (fun a -> Fp (Fild (I32, mem_abs a)));
        with_lab "half" (fun a -> Fp (Fop_m (FAdd, F64, mem_abs a)));
        with_lab "out" (fun a -> Fp (Fist_m (I32, mem_abs a, true)));
        with_lab "n2" (fun a -> Fp (Fild (I16, mem_abs a)));
        a32 (Fp Fchs);
        with_lab "out" (fun a -> Fp (Fist_m (I16, mem_abs (a + 4), true)));
      ],
      [
        label "n"; dd 7; label "n2"; dw 123; Asm.align 4;
        label "half"; df64 0.5; label "out"; space 8;
      ] );
    ( "fcom + fnstsw + branch",
      [
        with_lab "a" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        with_lab "b" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp (Fcom_st (1, 2))); (* fcompp: compare b with a, pop both *)
        a32 (Fp Fnstsw_ax);
        a32 (Test (S8, R Esp (* ah *), I 0x45));
        jcc E "greater";
        a32 (Mov (S32, R Ebx, I 111));
        jmp "end";
        label "greater";
        a32 (Mov (S32, R Ebx, I 222));
        label "end";
      ],
      [ label "a"; df64 2.0; label "b"; df64 5.0 ] );
    ( "x87 stack spanning blocks",
      [
        a32 (Fp Fldz);
        a32 (Mov (S32, R Ecx, I 5));
        label "loop";
        with_lab "inc" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
      ],
      [ label "inc"; df64 1.25; label "out"; space 8 ] );
    ( "fsqrt/fabs/fchs/frndint",
      [
        with_lab "a" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp Fsqrt);
        a32 (Fp Fchs);
        a32 (Fp Fabs);
        with_lab "r" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp Frndint);
        a32 (Fp (Fop_st0_st (FMul, 1)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
        with_lab "out" (fun a -> Fp (Fst_m (F32, mem_abs (a + 8), true)));
      ],
      [ label "a"; df64 16.0; label "r"; df64 2.5; label "out"; space 16 ] );
    ( "ffree/fincstp bookkeeping",
      [
        a32 (Fp Fld1);
        a32 (Fp Fldz);
        a32 (Fp (Ffree 1));
        a32 (Fp Fincstp);
        a32 (Fp Fld1); (* reuses the freed slot *)
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
      ],
      [ label "out"; space 8 ] );
  ]

(* Fault generators and indirect calls: the outcomes (not just happy
   paths) must match the interpreter exactly. *)
let fault_and_indirect_programs =
  let open Asm in
  let open Insn in
  [
    ( "hlt raises #GP",
      [ a32 (Mov (S32, R Eax, I 7)); a32 Hlt; a32 (Inc (S32, R Eax)) ],
      [] );
    ( "ud2 raises #UD",
      [ a32 (Mov (S32, R Eax, I 7)); a32 Ud2; a32 (Inc (S32, R Eax)) ],
      [] );
    ( "indirect call through a function table",
      [
        mov_ri_lab Esi "ftab";
        a32 (Mov (S32, R Eax, I 0));
        a32 (Mov (S32, R Ecx, I 3));
        label "cloop";
        a32 (Mov (S32, R Ebx, R Ecx));
        a32 (Alu (And, S32, R Ebx, I 1));
        a32 (Call_ind (M { base = Some Esi; index = Some (Ebx, 4); disp = 0 }));
        a32 (Dec (S32, R Ecx));
        jcc Ne "cloop";
        jmp "cdone";
        label "f0";
        a32 (Alu (Add, S32, R Eax, I 100));
        a32 (Ret 0);
        label "f1";
        a32 (Alu (Add, S32, R Eax, I 1));
        a32 (Ret 0);
        label "cdone";
      ],
      [ label "ftab"; dd_lab "f0"; dd_lab "f1" ] );
  ]

let x87_extra_programs =
  let open Asm in
  let open Insn in
  [
    ( "x87 constants, register moves and compares",
      [
        a32 (Fp Fldpi);
        a32 (Fp (Fld_st 0)); (* dup pi *)
        with_lab "c" (fun a -> Fp (Fop_m (FMul, F64, mem_abs a)));
        a32 (Fp (Fst_st (1, false))); (* st1 := st0 *)
        with_lab "c" (fun a -> Fp (Fcom_m (F64, mem_abs a, 0)));
        a32 (Fp Fnstsw_ax);
        a32 (Mov (S32, R Ebx, R Eax));
        with_lab "c" (fun a -> Fp (Fcom_m (F64, mem_abs (a + 8), 1)));
        a32 (Fp Fnstsw_ax);
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 8), true)));
      ],
      [ label "c"; df64 2.0; df64 100.0; label "out"; space 16 ] );
    ( "fincstp/fdecstp wraparound",
      [
        a32 (Fp Fld1);
        a32 (Fp Fldz);
        a32 (Fp Fdecstp); (* TOS moves to an empty slot *)
        a32 (Fp Fincstp);
        a32 (Fp Fincstp); (* now at the 1.0 entry *)
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs a, false)));
        a32 (Fp Fdecstp);
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 8), true)));
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 16), true)));
      ],
      [ label "out"; space 24 ] );
  ]

let mmx_sse_programs =
  let open Asm in
  let open Insn in
  [
    ( "mmx logicals and shifts",
      [
        with_lab "a" (fun a -> Mmx (Movq_to_mm (0, MMem (mem_abs a))));
        with_lab "b" (fun a -> Mmx (Movq_to_mm (1, MMem (mem_abs a))));
        a32 (Mmx (Pand (0, MM 1)));
        with_lab "a" (fun a -> Mmx (Por (0, MMem (mem_abs a))));
        a32 (Mmx (Psub (2, 1, MM 0)));
        a32 (Mmx (Psrl (2, 1, 5)));
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs a), 0)));
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs (a + 8)), 1)));
        a32 (Mmx Emms);
      ],
      [
        label "a"; dq 0x00FF00FF12345678L; label "b"; dq 0x0F0F0F0F0F0F0F0FL;
        label "out"; space 16;
      ] );
    ( "sse aligned and scalar-double moves",
      [
        with_lab "a" (fun a -> Sse (Movaps (XM 0, XMem (mem_abs a))));
        a32 (Sse (Movaps (XM 1, XM 0)));
        with_lab "b" (fun a -> Sse (Movsd_x (XM 1, XMem (mem_abs a))));
        a32 (Sse (Movsd_x (XM 2, XM 1)));
        a32 (Sse (Sse_arith (SAdd, Packed_single, 0, XM 0)));
        with_lab "out" (fun a -> Sse (Movaps (XMem (mem_abs a), XM 0)));
        with_lab "out" (fun a -> Sse (Movups (XMem (mem_abs (a + 16)), XM 1)));
        with_lab "out" (fun a -> Sse (Movsd_x (XMem (mem_abs (a + 32)), XM 2)));
      ],
      [
        label "a"; df32 1.0; df32 2.0; df32 3.0; df32 4.0;
        label "b"; df64 9.5; df64 0.0;
        label "out"; space 48;
      ] );
    ( "mmx lanes",
      [
        with_lab "a" (fun a -> Mmx (Movq_to_mm (0, MMem (mem_abs a))));
        with_lab "b" (fun a -> Mmx (Movq_to_mm (1, MMem (mem_abs a))));
        a32 (Mmx (Padd (2, 0, MM 1)));
        a32 (Mmx (Pmullw (1, MM 0)));
        a32 (Mmx (Pxor (2, MM 2)));
        a32 (Mmx (Pcmpeq (4, 2, MM 2)));
        a32 (Mmx (Psll (2, 0, 3)));
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs a), 0)));
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs (a + 8)), 1)));
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs (a + 16)), 2)));
        a32 (Mmx (Movd_to_mm (3, R Eax)));
        a32 (Mmx (Movd_from_mm (R Ebx, 3)));
        a32 (Mmx Emms);
      ],
      [
        label "a"; dq 0x0001000200030004L; label "b"; dq 0x0010002000300040L;
        label "out"; space 24;
      ] );
    ( "fp then mmx then fp (mode switches)",
      [
        a32 (Fp Fld1);
        with_lab "t" (fun a -> Fp (Fst_m (F64, mem_abs a, true)));
        jmp "mmxpart";
        label "mmxpart";
        with_lab "a" (fun a -> Mmx (Movq_to_mm (0, MMem (mem_abs a))));
        a32 (Mmx (Padd (4, 0, MM 0)));
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (mem_abs a), 0)));
        jmp "fppart";
        label "fppart";
        a32 (Fp (Ffree 0)) (* free the slot the MMX write validated *);
        a32 (Fp Fincstp);
        a32 (Fp Fldz);
        with_lab "out" (fun a -> Fp (Fst_m (F64, mem_abs (a + 8), true)));
      ],
      [ label "a"; dq 0x1111111122222222L; label "t"; space 8; label "out"; space 16 ]
    );
    ( "sse packed single arithmetic",
      [
        with_lab "a" (fun a -> Sse (Movups (XM 0, XMem (mem_abs a))));
        with_lab "b" (fun a -> Sse (Movups (XM 1, XMem (mem_abs a))));
        a32 (Sse (Sse_arith (SAdd, Packed_single, 0, XM 1)));
        a32 (Sse (Sse_arith (SMul, Packed_single, 1, XM 0)));
        a32 (Sse (Sqrtps (2, XM 1)));
        a32 (Sse (Sse_arith (SMin, Packed_single, 2, XM 0)));
        a32 (Sse (Sse_arith (SMax, Packed_single, 0, XM 1)));
        with_lab "out" (fun a -> Sse (Movups (XMem (mem_abs a), XM 0)));
        with_lab "out" (fun a -> Sse (Movups (XMem (mem_abs (a + 16)), XM 2)));
      ],
      [
        label "a"; df32 1.0; df32 4.0; df32 9.0; df32 16.0;
        label "b"; df32 0.5; df32 1.5; df32 2.5; df32 3.5;
        label "out"; space 32;
      ] );
    ( "sse scalar + conversions",
      [
        a32 (Mov (S32, R Eax, I 42));
        a32 (Sse (Cvtsi2ss (0, R Eax)));
        with_lab "b" (fun a -> Sse (Movss (XM 1, XMem (mem_abs a))));
        a32 (Sse (Sse_arith (SDiv, Scalar_single, 0, XM 1)));
        a32 (Sse (Cvtss2sd (2, XM 0)));
        a32 (Sse (Sse_arith (SAdd, Scalar_double, 2, XM 2)));
        a32 (Sse (Cvtsd2ss (3, XM 2)));
        a32 (Sse (Cvttss2si (Ebx, XM 3)));
        with_lab "out" (fun a -> Sse (Movss (XMem (mem_abs a), XM 3)));
      ],
      [ label "b"; df32 4.0; label "out"; space 16 ] );
    ( "sse bitwise and packed int (format dance)",
      [
        with_lab "a" (fun a -> Sse (Movups (XM 0, XMem (mem_abs a))));
        a32 (Sse (Sse_arith (SAdd, Packed_single, 0, XM 0))); (* ps format *)
        with_lab "m" (fun a -> Sse (Andps (0, XMem (mem_abs a)))); (* -> int *)
        a32 (Sse (Paddd_x (0, XM 0)));
        a32 (Sse (Xorps (1, XM 1))); (* zero idiom *)
        a32 (Sse (Orps (1, XM 0)));
        a32 (Sse (Psubd_x (0, XM 1)));
        with_lab "out" (fun a -> Sse (Movups (XMem (mem_abs a), XM 0)));
        with_lab "out" (fun a -> Sse (Movups (XMem (mem_abs (a + 16)), XM 1)));
      ],
      [
        label "a"; df32 1.0; df32 2.0; df32 3.0; df32 4.0;
        label "m"; dd 0xFFFFFFFF; dd 0xFFFF0000; dd 0x0000FFFF; dd 0xFFFFFFFF;
        label "out"; space 32;
      ] );
    ( "ucomiss branching",
      [
        with_lab "a" (fun a -> Sse (Movss (XM 0, XMem (mem_abs a))));
        with_lab "b" (fun a -> Sse (Movss (XM 1, XMem (mem_abs a))));
        a32 (Sse (Ucomiss (0, XM 1)));
        jcc B "less";
        a32 (Mov (S32, R Ebx, I 1));
        jmp "end";
        label "less";
        a32 (Mov (S32, R Ebx, I 2));
        label "end";
        a32 (Sse (Ucomiss (1, XM 0)));
        with_lab "flags" (fun a -> Setcc (B, M (mem_abs a)));
        with_lab "flags" (fun a -> Setcc (E, M (mem_abs (a + 1))));
        with_lab "flags" (fun a -> Setcc (P, M (mem_abs (a + 2))));
      ],
      ([ label "a"; df32 1.5; label "b"; df32 2.5 ] @ flags_space) );
  ]

let misalign_programs =
  let open Asm in
  let open Insn in
  [
    ( "fused flags consumer faults (regression)",
      (* a cmov whose memory operand is misaligned regenerates mid-block and
         re-reads the producer's flags from canonic state: fusion must still
         materialize them (neg.w -> cmovg [misaligned]; sbb kills the flags
         afterwards so plain liveness would drop them) *)
      [
        mov_ri_lab Esi "fbuf";
        a32 (Mov (S32, R Eax, I 0x12345678));
        a32 (Mov (S32, R Ecx, I 0x0000000D));
        a32 (Mov (S32, R Ebp, I 0x00000101));
        a32 (Neg (S16, R Ebp));
        a32 (Cmovcc (G, Ecx, M { base = Some Esi; index = None; disp = 0x1f }));
        a32 (Alu (Sbb, S16, R Eax, M { base = Some Esi; index = None; disp = 0x10 }));
        a32 (Cmovcc (S, Ecx, M { base = Some Esi; index = None; disp = 0x2d }));
        a32 (Setcc (A, M { base = Some Esi; index = None; disp = 0x31 }));
      ],
      [ label "fbuf"; space 64 ] );
    ( "misaligned loads and stores",
      [
        mov_ri_lab Ebx "buf";
        a32 (Alu (Add, S32, R Ebx, I 1)); (* odd address *)
        a32 (Mov (S32, M (Insn.mem_b Ebx), I 0xCAFEBABE));
        a32 (Mov (S32, R Ecx, M (Insn.mem_b Ebx)));
        a32 (Mov (S16, M (Insn.mem_bd Ebx 5), I 0x1234));
        a32 (Mov (S32, R Edx, M (Insn.mem_bd Ebx 3)));
        (* run it in a loop so regeneration kicks in *)
        a32 (Mov (S32, R Esi, I 20));
        label "mloop";
        a32 (Alu (Add, S32, M (Insn.mem_b Ebx), I 1));
        a32 (Dec (S32, R Esi));
        jcc Ne "mloop";
      ],
      [ label "buf"; space 32 ] );
    ( "misaligned fp data",
      [
        mov_ri_lab Ebx "buf";
        a32 (Alu (Add, S32, R Ebx, I 4)); (* 4-aligned but not 8 *)
        with_lab "v" (fun a -> Fp (Fld_m (F64, mem_abs a)));
        a32 (Fp (Fst_m (F64, Insn.mem_b Ebx, true)));
        a32 (Fp (Fld_m (F64, Insn.mem_b Ebx)));
        a32 (Fp (Fop_st0_st (FAdd, 0)));
        a32 (Fp (Fst_m (F64, Insn.mem_bd Ebx 8, true)));
      ],
      [ label "v"; df64 3.25; label "buf"; space 32 ] );
  ]

(* ------------------------------------------------------------------ *)
(* Engine-mechanism tests                                              *)
(* ------------------------------------------------------------------ *)

let mechanism_tests =
  let open Asm in
  let open Insn in
  [
    Alcotest.test_case "chaining patches dispatch exits" `Quick (fun () ->
        let code =
          [ label "start"; a32 (Mov (S32, R Eax, I 1)); jmp "b2"; label "b2";
            a32 (Alu (Add, S32, R Eax, I 1)); jmp "b3"; label "b3" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        let _, eng = run_el ~config:Config.cold_only image in
        check bool "chained some branches" true
          (eng.Engine.acct.Account.chain_patches > 0));
    Alcotest.test_case "use counters count" `Quick (fun () ->
        let code =
          [ label "start";
            a32 (Mov (S32, R Eax, I 0));
            a32 (Mov (S32, R Ecx, I 50));
            label "loop";
            a32 (Alu (Add, S32, R Eax, R Ecx));
            a32 (Dec (S32, R Ecx));
            jcc Ne "loop" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        (* both counter schemes must see the loop block run ~50 times:
           the hashed machine table when hot counters are on, the arena
           word through the original stub path when off *)
        List.iter
          (fun hc ->
            let mem = Memory.create () in
            let st = Asm.load image mem in
            let eng =
              Engine.create
                ~config:
                  { Config.default with
                    Config.heat_threshold = 1000;
                    Config.enable_hot_counters = hc }
                ~btlib:(module Btlib.Linuxsim) mem
            in
            (match Engine.run ~fuel:10_000_000 eng st with
            | Engine.Exited (0, _) -> ()
            | _ -> Alcotest.fail "exit");
            (* find the loop block's counter: it ran 50 times *)
            let found = ref false in
            Hashtbl.iter
              (fun _ b ->
                let c =
                  if hc then
                    eng.Engine.machine.Ipf.Machine.hotc.(Ipf.Machine
                                                         .counter_slot
                                                           b.Block.entry)
                  else Memory.read32 mem b.Block.ctr_addr
                in
                if c >= 49 then found := true)
              eng.Engine.cache.Block.by_id;
            check bool "a block executed ~50 times" true !found)
          [ true; false ]);
    Alcotest.test_case "heat trigger fires and registers" `Quick (fun () ->
        let code =
          [ label "start";
            a32 (Mov (S32, R Eax, I 0));
            a32 (Mov (S32, R Ecx, I 400));
            label "loop";
            a32 (Alu (Add, S32, R Eax, R Ecx));
            a32 (Dec (S32, R Ecx));
            jcc Ne "loop" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        let mem = Memory.create () in
        let st = Asm.load image mem in
        let eng =
          Engine.create
            ~config:{ Config.default with Config.heat_threshold = 100 }
            ~btlib:(module Btlib.Linuxsim) mem
        in
        (match Engine.run ~fuel:10_000_000 eng st with
        | Engine.Exited (0, _) -> ()
        | _ -> Alcotest.fail "exit");
        check bool "heat triggered" true (eng.Engine.acct.Account.heat_triggers > 0));
    Alcotest.test_case "hot-counter hash aliasing heats only the runner" `Quick
      (fun () ->
        (* Two block entries that share a counter slot: "loop" (runs 60
           times, crosses the threshold) and "dead" (a conditional-branch
           target that never executes). The Hotc pulse embeds the cold
           block's id, so the shared slot must heat exactly the block
           that crossed the threshold — never the alias. The pad before
           "dead" is solved for below so that
           counter_slot(dead) = counter_slot(loop) by construction. *)
        let build pad =
          let code =
            [ label "start";
              a32 (Mov (S32, R Eax, I 0));
              a32 (Mov (S32, R Esi, I 60));
              jmp "loop";
              label "dead"; a32 (Mov (S32, R Eax, I 99)) ]
            @ (if pad > 0 then [ Asm.space pad ] else [])
            @ [ label "loop";
                a32 (Alu (Add, S32, R Eax, I 1));
                a32 (Alu (Cmp, S32, R Esi, I (-1)));
                jcc E "dead" (* never taken: esi stays >= 0 *);
                a32 (Dec (S32, R Esi));
                jcc Ne "loop" ]
            @ epilogue
          in
          Asm.build ~code ~data:dump_space ()
        in
        let slot = Ipf.Machine.counter_slot in
        (* solve the pad between the labels so the slots collide; branch
           encodings can shrink/stretch as distances change, so re-read
           the real addresses and refine until they actually collide *)
        let image = ref (build 0) and pad = ref 0 and rounds = ref 0 in
        let addr l = List.assoc l !image.Asm.labels in
        while slot (addr "loop") <> slot (addr "dead") && !rounds < 8 do
          let la = addr "loop" and da = addr "dead" in
          let q = ref 1 in
          while slot (la + !q) <> slot da && !q < 16384 do incr q done;
          pad := !pad + !q;
          image := build !pad;
          incr rounds
        done;
        let image = !image in
        let la = List.assoc "loop" image.Asm.labels
        and da = List.assoc "dead" image.Asm.labels in
        check bool "constructed a slot collision" true (slot la = slot da);
        let run (pre, dc) =
          let mem = Memory.create () in
          let st = Asm.load image mem in
          let eng =
            Engine.create
              ~config:
                { Config.default with
                  Config.heat_threshold = 40;
                  Config.enable_hot_counters = true;
                  Config.enable_predecode = pre;
                  Config.enable_decode_cache = dc }
              ~btlib:(module Btlib.Linuxsim) mem
          in
          (match Engine.run ~fuel:10_000_000 eng st with
          | Engine.Exited (0, _) -> ()
          | _ -> Alcotest.fail "exit");
          check bool "runner heated" true
            (eng.Engine.acct.Account.heat_triggers > 0);
          (* the alias never ran: it must not even have a block, let
             alone a hot one *)
          check bool "alias block never materialized" true
            (Block.find_entry eng.Engine.cache da = None);
          (* the trigger resets (decays) the shared slot *)
          check bool "hot counter decayed on trigger" true
            (eng.Engine.machine.Ipf.Machine.hotc.(slot la) < 40);
          ( eng.Engine.machine.Ipf.Machine.stats.Ipf.Machine.cycles,
            Array.copy eng.Engine.machine.Ipf.Machine.hotc,
            Array.copy eng.Engine.machine.Ipf.Machine.edgec )
        in
        (* counters are virtual-clock state: bit-identical across the
           predecode x decode-cache matrix *)
        let base = run (true, true) in
        List.iter
          (fun cfg ->
            check bool "matrix counters identical" true (run cfg = base))
          [ (true, false); (false, true); (false, false) ]);
    Alcotest.test_case "edge counters saturate at the ceiling" `Quick
      (fun () ->
        (* Instrumentation lives only in cold translations, so keep the
           block cold (threshold above the trip count): 70k taken
           back-edges then push the edge counter past its 0xFFFF ceiling
           and it must pin there, not wrap, while the hot counter keeps
           the exact execution count. Deterministic across the same
           config matrix. *)
        let code =
          [ label "start";
            a32 (Mov (S32, R Eax, I 0));
            a32 (Mov (S32, R Esi, I 70000));
            label "loop";
            a32 (Alu (Add, S32, R Eax, I 1));
            a32 (Dec (S32, R Esi));
            jcc Ne "loop" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        let la = List.assoc "loop" image.Asm.labels in
        let s = Ipf.Machine.counter_slot la in
        let run (pre, dc) =
          let mem = Memory.create () in
          let st = Asm.load image mem in
          let eng =
            Engine.create
              ~config:
                { Config.default with
                  Config.heat_threshold = 100_000;
                  Config.enable_hot_counters = true;
                  Config.enable_predecode = pre;
                  Config.enable_decode_cache = dc }
              ~btlib:(module Btlib.Linuxsim) mem
          in
          (match Engine.run ~fuel:20_000_000 eng st with
          | Engine.Exited (0, _) -> ()
          | _ -> Alcotest.fail "exit");
          let m = eng.Engine.machine in
          check int "edge counter saturated exactly at the ceiling"
            Ipf.Machine.edgec_saturate
            m.Ipf.Machine.edgec.(s);
          (* 70k entries minus the initial translation-time entry *)
          check int "hot counter kept the exact execution count" 69_999
            m.Ipf.Machine.hotc.(s);
          ( m.Ipf.Machine.stats.Ipf.Machine.cycles,
            Array.copy m.Ipf.Machine.hotc,
            Array.copy m.Ipf.Machine.edgec )
        in
        let base = run (true, true) in
        List.iter
          (fun cfg ->
            check bool "matrix counters identical" true (run cfg = base))
          [ (true, false); (false, true); (false, false) ]);
    Alcotest.test_case "misalignment stages: detect then avoid" `Quick (fun () ->
        let code =
          [ label "start";
            mov_ri_lab Ebx "buf";
            a32 (Alu (Add, S32, R Ebx, I 2));
            a32 (Mov (S32, R Ecx, I 30));
            label "loop";
            a32 (Alu (Add, S32, M (Insn.mem_b Ebx), I 1));
            a32 (Dec (S32, R Ecx));
            jcc Ne "loop" ]
          @ epilogue
        in
        let image =
          Asm.build ~code ~data:(Asm.[ label "buf"; space 16 ] @ dump_space) ()
        in
        let mem = Memory.create () in
        let st = Asm.load image mem in
        let eng = Engine.create ~config:Config.cold_only ~btlib:(module Btlib.Linuxsim) mem in
        (match Engine.run ~fuel:10_000_000 eng st with
        | Engine.Exited (0, _) -> ()
        | _ -> Alcotest.fail "exit");
        check bool "stage-1 trigger fired" true
          (eng.Engine.acct.Account.misalign_stage1_hits > 0);
        check bool "stage-2 block generated" true
          (eng.Engine.acct.Account.cold_regens > 0);
        check int "value correct" 30
          (Memory.read32 mem (image.Asm.lookup "buf" + 2)));
    Alcotest.test_case "misalignment avoidance off -> OS faults" `Quick (fun () ->
        let code =
          [ label "start";
            mov_ri_lab Ebx "buf";
            a32 (Alu (Add, S32, R Ebx, I 2));
            a32 (Mov (S32, R Ecx, I 5));
            label "loop";
            a32 (Alu (Add, S32, M (Insn.mem_b Ebx), I 1));
            a32 (Dec (S32, R Ecx));
            jcc Ne "loop" ]
          @ epilogue
        in
        let image =
          Asm.build ~code ~data:(Asm.[ label "buf"; space 16 ] @ dump_space) ()
        in
        let mem = Memory.create () in
        let st = Asm.load image mem in
        let eng =
          Engine.create
            ~config:{ Config.cold_only with Config.misalign_avoidance = false }
            ~btlib:(module Btlib.Linuxsim) mem
        in
        (match Engine.run ~fuel:10_000_000 eng st with
        | Engine.Exited (0, _) -> ()
        | _ -> Alcotest.fail "exit");
        check bool "OS-handled misalignment happened" true
          (eng.Engine.acct.Account.misalign_os_faults > 0);
        check int "value still correct" 5
          (Memory.read32 mem (image.Asm.lookup "buf" + 2)));
    Alcotest.test_case "SMC invalidates and re-translates" `Quick (fun () ->
        (* patch the immediate of a later mov, then execute it *)
        let code =
          [ label "start";
            (* run the target once so it gets translated *)
            call "target";
            (* overwrite the imm32 of the mov at target+ (1 byte opcode) *)
            with_lab "target" (fun a ->
                Mov (S32, M (Insn.mem_abs (a + 1)), I 777));
            call "target";
            jmp "end";
            label "target";
            a32 (Mov (S32, R Eax, I 111));
            a32 (Ret 0);
            label "end" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        (* reference *)
        let r = run_ref ~writable_code:true image in
        let e, eng = run_el ~writable_code:true ~config:Config.cold_only image in
        compare_sides "smc" r e;
        (* the register dump (before the exit epilogue) holds the patched
           value in its EAX slot *)
        let dumped_eax =
          let b k = Char.code e.data_bytes.[k] in
          b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
        in
        check int "eax got patched value" 777 dumped_eax;
        check bool "smc invalidation counted" true
          (eng.Engine.acct.Account.smc_invalidations > 0));
    Alcotest.test_case "precise exception: push with bad esp (Table 1)" `Quick
      (fun () ->
        let code =
          [ label "start";
            a32 (Mov (S32, R Esp, I 0x30000000));
            a32 (Mov (S32, R Eax, I 0x1234));
            label "faultpoint";
            a32 (Push (R Eax)) ]
        in
        let image = Asm.build ~code ~data:[] () in
        let mem = Memory.create () in
        let st = Asm.load image mem in
        let eng = Engine.create ~config:Config.cold_only ~btlib:(module Btlib.Linuxsim) mem in
        (match Engine.run ~fuel:1_000_000 eng st with
        | Engine.Unhandled_fault (Fault.Page_fault (a, Fault.Write), fst) ->
          check int "fault addr" 0x2FFFFFFC a;
          check int "esp preserved (correct translation)" 0x30000000
            (State.get32 fst Insn.Esp);
          check int "eip at faulting push" (image.Asm.lookup "faultpoint")
            fst.State.eip
        | _ -> Alcotest.fail "expected unhandled #PF"));
    Alcotest.test_case "guest handler fixes fault and resumes" `Quick (fun () ->
        (* handler maps the missing page via mmap syscall, then retries *)
        let code =
          [ label "start";
            (* register handler for #PF (vector 14) *)
            a32 (Mov (S32, R Eax, I 48));
            a32 (Mov (S32, R Ebx, I 14));
            mov_ri_lab Ecx "handler";
            a32 (Int_n 0x80);
            (* now touch unmapped memory *)
            a32 (Mov (S32, R Edi, I 0x30000000));
            a32 (Mov (S32, M (Insn.mem_b Edi), I 0x5150));
            a32 (Mov (S32, R Edx, M (Insn.mem_b Edi)));
            jmp "end";
            label "handler";
            (* stack: [esp]=addr, [esp+4]=vector, [esp+8]=faulting eip *)
            a32 (Mov (S32, R Eax, I 90)); (* mmap *)
            a32 (Mov (S32, R Ebx, M (Insn.mem_b Esp)));
            a32 (Mov (S32, R Ecx, I 0x1000));
            a32 (Int_n 0x80);
            a32 (Alu (Add, S32, R Esp, I 8));
            a32 (Ret 0);
            label "end" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        let r = run_ref image in
        let e, _ = run_el ~config:Config.cold_only image in
        (* dead flags at the exception are allowed to differ *)
        compare_sides ~compare_flags:false "handler-resume" r e;
        check int "resumed and loaded" 0x5150 (State.get32 e.st Insn.Edx));
    Alcotest.test_case "div by zero delivered to handler" `Quick (fun () ->
        let code =
          [ label "start";
            a32 (Mov (S32, R Eax, I 48));
            a32 (Mov (S32, R Ebx, I 0));
            mov_ri_lab Ecx "handler";
            a32 (Int_n 0x80);
            a32 (Mov (S32, R Eax, I 100));
            a32 (Mov (S32, R Ecx, I 0));
            a32 Cdq;
            a32 (Div (S32, R Ecx));
            label "after";
            jmp "end";
            label "handler";
            (* skip the faulting instruction: replace return eip *)
            a32 (Mov (S32, R Esi, I 0xD1D1));
            mov_ri_lab Ebx "after";
            a32 (Mov (S32, M (Insn.mem_bd Esp 8), R Ebx));
            a32 (Alu (Add, S32, R Esp, I 8));
            a32 (Ret 0);
            label "end" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        let r = run_ref image in
        let e, _ = run_el ~config:Config.cold_only image in
        compare_sides ~compare_flags:false "div0-handler" r e;
        check int "handler ran" 0xD1D1 (State.get32 e.st Insn.Esi));
    Alcotest.test_case "translation-cache flush-on-full" `Quick (fun () ->
        (* a tiny cache limit forces wholesale flushes mid-run; results
           must stay exact and the engine must keep making progress *)
        let code =
          [ label "start"; a32 (Mov (S32, R Eax, I 0));
            a32 (Mov (S32, R Ecx, I 120)); label "loop";
            a32 (Alu (Add, S32, R Eax, R Ecx));
            a32 (Shift (Rol, S32, R Eax, Amt_imm 3));
            a32 (Alu (Xor, S32, R Eax, I 0x55AA));
            a32 (Dec (S32, R Ecx)); jcc Ne "loop" ]
          @ epilogue
        in
        let image = Asm.build ~code ~data:dump_space () in
        let r = run_ref image in
        let config =
          {
            Config.default with
            Config.heat_threshold = 15;
            session_candidates = 2;
            tcache_limit = 40;
          }
        in
        let e, eng = run_el ~config image in
        compare_sides "flush-on-full" r e;
        check bool "flushed at least twice" true
          (eng.Engine.acct.Account.cache_flushes >= 2));
    Alcotest.test_case "winsim and linuxsim agree" `Quick (fun () ->
        (* same program logic, different syscall conventions *)
        let prog vector exit_n set_exit =
          [ Asm.label "start";
            a32 (Mov (S32, R Ecx, I 10));
            Asm.label "loop";
            a32 (Alu (Add, S32, R Eax, R Ecx));
            a32 (Dec (S32, R Ecx));
            Asm.jcc Ne "loop" ]
          @ set_exit
          @ [ a32 (Mov (S32, R Eax, I exit_n)); a32 (Int_n vector) ]
        in
        let linux_img =
          Asm.build
            ~code:(prog 0x80 1 [ a32 (Mov (S32, R Ebx, I 55)) ])
            ~data:[] ()
        in
        let win_img =
          Asm.build
            ~code:(prog 0x2E 0x01 [ a32 (Mov (S32, R Edx, I 55)) ])
            ~data:[] ()
        in
        let run img btlib =
          let mem = Memory.create () in
          let st = Asm.load img mem in
          let eng = Engine.create ~config:Config.cold_only ~btlib mem in
          match Engine.run ~fuel:1_000_000 eng st with
          | Engine.Exited (code, _) -> code
          | _ -> Alcotest.fail "exit"
        in
        check int "linux exit" 55 (run linux_img (module Btlib.Linuxsim));
        check int "windows exit" 55 (run win_img (module Btlib.Winsim)));
    Alcotest.test_case "fp TOS speculation miss recovers" `Quick (fun () ->
        (* a function is entered once with empty stack and once with one
           element pushed: TOS differs -> rotation recovery *)
        let code =
          [ label "start";
            call "f"; (* TOS = 0 at translation *)
            a32 (Fp Fld1); (* push *)
            call "f"; (* TOS differs: speculation miss *)
            with_lab "out" (fun a -> Fp (Fst_m (F64, Insn.mem_abs a, true)));
            with_lab "out" (fun a -> Fp (Fst_m (F64, Insn.mem_abs (a + 8), true)));
            jmp "end";
            label "f";
            a32 (Fp Fldz);
            a32 (Fp Fld1);
            a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
            a32 (Ret 0);
            label "end" ]
          @ epilogue
        in
        let image =
          Asm.build ~code ~data:(Asm.[ label "out"; space 16 ] @ dump_space) ()
        in
        let r = run_ref image in
        let e, eng = run_el ~config:Config.cold_only image in
        compare_sides "tos-miss" r e;
        check bool "tos miss recovered" true (eng.Engine.acct.Account.tos_misses > 0));
    Alcotest.test_case "version mismatch rejected at engine creation" `Quick
      (fun () ->
        let module Old = struct
          include Btlib.Linuxsim

          let version = { Btlib.Btos.major = 1; minor = 0 }
        end in
        try
          ignore
            (Engine.create ~btlib:(module Old) (Memory.create ()));
          Alcotest.fail "expected Version_mismatch"
        with Btlib.Btos.Version_mismatch _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Random differential testing                                         *)
(* ------------------------------------------------------------------ *)

let gen_straightline =
  let open QCheck.Gen in
  let open Insn in
  let reg = oneofl [ Eax; Ebx; Ecx; Edx; Ebp ] in
  let size = oneofl [ S8; S16; S32 ] in
  (* memory operands through ESI/EDI which point at a scratch buffer *)
  let mem =
    let* base = oneofl [ Esi; Edi ] in
    let* d = int_bound 48 in
    return { base = Some base; index = None; disp = d }
  in
  let operand = oneof [ map (fun r -> R r) reg; map (fun m -> M m) mem ] in
  let imm_for s =
    map (Ia32.Word.mask (size_bytes s)) (int_range min_int max_int)
  in
  let insn =
    oneof
      [
        (let* op = oneofl [ Add; Or; Adc; Sbb; And; Sub; Xor; Cmp ] in
         let* s = size in
         oneof
           [
             (let* d = operand in
              let* r = reg in
              return (Alu (op, s, d, R r)));
             (let* r = reg in
              let* m = mem in
              return (Alu (op, s, R r, M m)));
             (let* d = operand in
              let* v = imm_for s in
              return (Alu (op, s, d, I v)));
           ]);
        (let* s = size in
         let* d = operand in
         let* v = imm_for s in
         return (Mov (s, d, I v)));
        (let* s = size in
         let* d = operand in
         let* r = reg in
         return (Mov (s, d, R r)));
        (let* s = size in
         let* r = reg in
         let* m = mem in
         return (Mov (s, R r, M m)));
        (let* s = oneofl [ S8; S16 ] in
         let* r = reg in
         let* o = operand in
         return (Movzx (s, r, o)));
        (let* s = oneofl [ S8; S16 ] in
         let* r = reg in
         let* o = operand in
         return (Movsx (s, r, o)));
        (let* sh = oneofl [ Shl; Shr; Sar; Rol; Ror ] in
         let* s = size in
         let* d = operand in
         let* a = oneof [ map (fun n -> Amt_imm n) (int_bound 34); return Amt_cl ] in
         return (Shift (sh, s, d, a)));
        (let* s = size in
         let* d = operand in
         return (Inc (s, d)));
        (let* s = size in
         let* d = operand in
         return (Dec (s, d)));
        (let* s = size in
         let* d = operand in
         return (Neg (s, d)));
        (let* s = size in
         let* d = operand in
         return (Not (s, d)));
        (let* s = size in
         let* o = operand in
         return (Mul1 (s, o)));
        (let* s = size in
         let* o = operand in
         return (Imul1 (s, o)));
        (let* r = reg in
         let* o = operand in
         return (Imul_rr (r, o)));
        (let* c = oneofl [ O; B; E; Ne; S; P; L; G; Be; A ] in
         let* o = operand in
         return (Setcc (c, o)));
        (let* c = oneofl [ O; B; E; Ne; S; P; L; G ] in
         let* r = reg in
         let* o = operand in
         return (Cmovcc (c, r, o)));
        (let* r = reg in
         return (Push (R r)));
        (let* r = reg in
         return (Pop (R r)));
        return Cdq;
        return Cwde;
        (let* d = operand in
         let* r = reg in
         let* a = oneofl [ Amt_imm 0; Amt_imm 5; Amt_imm 31; Amt_cl ] in
         return (Shld (d, r, a)));
        (let* d = operand in
         let* r = reg in
         let* a = oneofl [ Amt_imm 3; Amt_cl ] in
         return (Shrd (d, r, a)));
        (let* s = size in
         let* d = operand in
         let* r = reg in
         return (Xchg (s, d, r)));
      ]
  in
  list_size (int_range 3 25) insn

let verbose_insn i =
  let sz =
    match i with
    | Insn.Alu (_, s, _, _) | Insn.Test (s, _, _) | Insn.Mov (s, _, _)
    | Insn.Shift (_, s, _, _) | Insn.Inc (s, _) | Insn.Dec (s, _)
    | Insn.Neg (s, _) | Insn.Not (s, _) | Insn.Mul1 (s, _) | Insn.Imul1 (s, _)
    | Insn.Div (s, _) | Insn.Idiv (s, _) | Insn.Xchg (s, _, _)
    | Insn.Movzx (s, _, _) | Insn.Movsx (s, _, _) ->
      (match s with Insn.S8 -> ".b" | Insn.S16 -> ".w" | Insn.S32 -> ".d")
    | _ -> ""
  in
  Insn.to_string i ^ sz

let arbitrary_prog =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map verbose_insn l))
    ~shrink:QCheck.Shrink.list gen_straightline

let random_diff_test =
  QCheck.Test.make ~name:"random straight-line differential" ~count:400
    arbitrary_prog (fun insns ->
      let open Asm in
      let open Insn in
      let prologue =
        [
          label "start";
          mov_ri_lab Esi "buf";
          mov_ri_lab Edi "buf2";
          a32 (Mov (S32, R Eax, I 0x12345678));
          a32 (Mov (S32, R Ebx, I 0x9ABCDEF0));
          a32 (Mov (S32, R Ecx, I 0x0000000D));
          a32 (Mov (S32, R Edx, I 0x7FFFFFFF));
          a32 (Mov (S32, R Ebp, I 0x00000101));
        ]
      in
      let data =
        [ label "buf"; space 64; label "buf2"; space 64 ] @ dump_space
      in
      let image =
        Asm.build
          ~code:(prologue @ List.map a32 insns @ epilogue)
          ~data ()
      in
      let r = run_ref image in
      let e, _ = run_el ~config:Config.cold_only image in
      (match (r.outcome, e.outcome) with
      | `Exit a, `Exit b when a = b -> ()
      | `Fault a, `Fault b when Fault.equal a b -> ()
      | _ -> QCheck.Test.fail_reportf "outcomes differ");
      if r.data_bytes <> e.data_bytes then
        QCheck.Test.fail_reportf "data differs";
      if r.stack_bytes <> e.stack_bytes then
        QCheck.Test.fail_reportf "stack differs";
      List.for_all
        (fun reg -> State.get32 r.st reg = State.get32 e.st reg)
        Insn.all_regs
      && r.st.State.eip = e.st.State.eip)

let gen_fp_prog =
  let open QCheck.Gen in
  let open Insn in
  (* maintain plausible stack depth to mostly avoid stack faults (faults
     are still valid outcomes and must match) *)
  let fmem = oneofl [ "fa"; "fb"; "fc" ] in
  let item depth =
    if depth = 0 then
      oneofl
        [ `Push (Fp Fld1); `Push (Fp Fldz); `PushMem ]
    else
      frequency
        [
          (2, return (`Push (Fp Fld1)));
          (1, return (`PushMem));
          (2, map (fun i -> `Op (Fp (Fop_st0_st (FAdd, i)))) (int_bound (depth - 1)));
          (2, map (fun i -> `Op (Fp (Fop_st0_st (FMul, i)))) (int_bound (depth - 1)));
          (1, map (fun i -> `Op (Fp (Fop_st0_st (FSub, i)))) (int_bound (depth - 1)));
          (1, map (fun i -> `PopOp i) (int_bound (depth - 1)));
          (1, map (fun i -> `Op (Fp (Fxch i))) (int_bound (depth - 1)));
          (1, return (`Op (Fp Fchs)));
          (1, return (`Op (Fp Fabs)));
          (1, return (`PopStore));
          (1, return (`Op (Fp (Fcom_st (0, 0)))));
        ]
  in
  let rec build n depth acc =
    if n = 0 then return (List.rev acc)
    else
      let* it = item depth in
      match it with
      | `Push insn -> build (n - 1) (min 8 (depth + 1)) (`I insn :: acc)
      | `PushMem ->
        let* m = fmem in
        build (n - 1) (min 8 (depth + 1)) (`Mem m :: acc)
      | `Op insn -> build (n - 1) depth (`I insn :: acc)
      | `PopOp i ->
        build (n - 1) (max 0 (depth - 1)) (`I (Fp (Fop_st_st0 (FAdd, max 1 i, true))) :: acc)
      | `PopStore -> build (n - 1) (max 0 (depth - 1)) (`Store :: acc)
  in
  let* n = int_range 4 20 in
  build n 0 []

let print_fp_item = function
  | `I insn -> Insn.to_string insn
  | `Mem name -> "fld " ^ name
  | `Store -> "fstp out"

let arbitrary_fp_prog =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_fp_item l))
    ~shrink:QCheck.Shrink.list gen_fp_prog

let random_fp_diff_test =
  QCheck.Test.make ~name:"random x87 differential" ~count:250 arbitrary_fp_prog
    (fun items ->
      let open Asm in
      let open Insn in
      let store_count = ref 0 in
      let code =
        List.map
          (fun it ->
            match it with
            | `I insn -> a32 insn
            | `Mem name -> with_lab name (fun a -> Fp (Fld_m (F64, mem_abs a)))
            | `Store ->
              let k = !store_count in
              incr store_count;
              with_lab "fout" (fun a ->
                  Fp (Fst_m (F64, mem_abs (a + (8 * (k land 7))), true))))
          items
      in
      let data =
        [ label "fa"; df64 1.5; label "fb"; df64 (-0.75); label "fc"; df64 1024.0;
          label "fout"; space 64 ]
        @ dump_space
      in
      let image = Asm.build ~code:((label "start" :: code) @ epilogue) ~data () in
      let r = run_ref image in
      let e, _ = run_el ~config:Config.cold_only image in
      (match (r.outcome, e.outcome) with
      | `Exit a, `Exit b when a = b -> ()
      | `Fault a, `Fault b when Fault.equal a b -> ()
      | `Fault _, `Fault _ -> QCheck.Test.fail_reportf "different faults"
      | _ -> QCheck.Test.fail_reportf "outcomes differ");
      r.data_bytes = e.data_bytes
      && Fpu.equal r.st.State.fpu e.st.State.fpu)

(* ------------------------------------------------------------------ *)
(* Hot-path differential tests                                         *)
(* ------------------------------------------------------------------ *)

let hot_config =
  {
    Config.default with
    Config.heat_threshold = 15;
    session_candidates = 2;
  }

(* Run under a hot-aggressive config and require that hot translation
   actually engaged. *)
let diff_hot ?(expect_hot = true) name code data =
  let image =
    Asm.build ~code:(Asm.label "start" :: (code @ epilogue)) ~data:(data @ dump_space) ()
  in
  let r = run_ref image in
  let e, eng = run_el ~config:hot_config image in
  compare_sides name r e;
  if expect_hot then
    check bool (name ^ ": hot blocks were generated") true
      (eng.Engine.acct.Account.hot_blocks > 0)

let hot_programs =
  let open Asm in
  let open Insn in
  [
    ( "hot: arithmetic loop",
      [
        a32 (Mov (S32, R Eax, I 0));
        a32 (Mov (S32, R Ecx, I 500));
        label "loop";
        a32 (Alu (Add, S32, R Eax, R Ecx));
        a32 (Alu (Xor, S32, R Eax, I 0x5A5A));
        a32 (Shift (Rol, S32, R Eax, Amt_imm 3));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
      ],
      [] );
    ( "hot: memory sum loop",
      [
        mov_ri_lab Esi "arr";
        a32 (Mov (S32, R Eax, I 0));
        a32 (Mov (S32, R Ecx, I 0));
        label "loop";
        a32 (Alu (Add, S32, R Eax, M { base = Some Esi; index = Some (Ecx, 4); disp = 0 }));
        a32 (Inc (S32, R Ecx));
        a32 (Alu (Cmp, S32, R Ecx, I 16));
        jcc Ne "loopchk";
        a32 (Mov (S32, R Ecx, I 0));
        a32 (Inc (S32, R Edx));
        label "loopchk";
        a32 (Alu (Cmp, S32, R Edx, I 40));
        jcc Ne "loop";
        (* store result *)
        with_lab "out" (fun a -> Mov (S32, M (mem_abs a), R Eax));
      ],
      Asm.(
        [ label "arr" ]
        @ List.init 16 (fun k -> dd (k * 3 + 1))
        @ [ label "out"; space 4 ]) );
    ( "hot: store-heavy loop (commit regions)",
      [
        mov_ri_lab Edi "buf";
        a32 (Mov (S32, R Ecx, I 300));
        label "loop";
        a32 (Mov (S32, R Eax, R Ecx));
        a32 (Imul_rri (Eax, R Eax, 7));
        a32 (Mov (S32, M (Insn.mem_b Edi), R Eax));
        a32 (Alu (Add, S32, M (Insn.mem_bd Edi 4), R Eax));
        a32 (Shift (Shr, S32, R Eax, Amt_imm 2));
        a32 (Mov (S32, M (Insn.mem_bd Edi 8), R Eax));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
      ],
      Asm.[ label "buf"; space 16 ] );
    ( "hot: conditional inside loop (side exits)",
      [
        a32 (Mov (S32, R Eax, I 0));
        a32 (Mov (S32, R Ebx, I 0));
        a32 (Mov (S32, R Ecx, I 400));
        label "loop";
        a32 (Test (S32, R Ecx, I 3));
        jcc E "mul4";
        a32 (Alu (Add, S32, R Eax, R Ecx));
        jmp "next";
        label "mul4";
        a32 (Alu (Add, S32, R Ebx, R Ecx));
        label "next";
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
      ],
      [] );
    ( "hot: diamond if-conversion",
      [
        a32 (Mov (S32, R Eax, I 0));
        a32 (Mov (S32, R Ebx, I 0));
        a32 (Mov (S32, R Ecx, I 300));
        label "loop";
        a32 (Test (S32, R Ecx, I 1));
        jcc E "even";
        a32 (Mov (S32, R Edx, I 111));
        jmp "join";
        label "even";
        a32 (Mov (S32, R Edx, I 222));
        jmp "join";
        label "join";
        a32 (Alu (Add, S32, R Eax, R Edx));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
      ],
      [] );
    ( "hot: x87 accumulation loop",
      [
        a32 (Fp Fldz);
        a32 (Mov (S32, R Ecx, I 200));
        label "loop";
        with_lab "step" (fun a -> Fp (Fld_m (F64, Insn.mem_abs a)));
        a32 (Fp (Fop_st_st0 (FAdd, 1, true)));
        a32 (Fp Fld1);
        a32 (Fp (Fxch 1));
        a32 (Fp (Fop_st_st0 (FMul, 1, true)));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
        with_lab "out" (fun a -> Fp (Fst_m (F64, Insn.mem_abs a, true)));
      ],
      Asm.[ label "step"; df64 0.125; label "out"; space 8 ] );
    ( "hot: call/ret in loop (indirect exits)",
      [
        a32 (Mov (S32, R Eax, I 0));
        a32 (Mov (S32, R Ecx, I 250));
        label "loop";
        call "bump";
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
        jmp "end";
        label "bump";
        a32 (Alu (Add, S32, R Eax, I 3));
        a32 (Ret 0);
        label "end";
      ],
      [] );
    ( "hot: misaligned loop regenerates with avoidance",
      [
        mov_ri_lab Ebx "buf";
        a32 (Alu (Add, S32, R Ebx, I 2));
        a32 (Mov (S32, R Ecx, I 300));
        label "loop";
        a32 (Alu (Add, S32, M (Insn.mem_b Ebx), I 5));
        a32 (Mov (S32, R Edx, M (Insn.mem_bd Ebx 6)));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
      ],
      Asm.[ label "buf"; space 32 ] );
    ( "hot: string op in loop",
      [
        a32 (Mov (S32, R Ebp, I 60));
        label "loop";
        mov_ri_lab Esi "src";
        mov_ri_lab Edi "dst";
        a32 (Mov (S32, R Ecx, I 4));
        a32 Cld;
        a32 (Movs (S32, Rep));
        a32 (Dec (S32, R Ebp));
        jcc Ne "loop";
      ],
      Asm.[ label "src"; raw "0123456789abcdef"; label "dst"; space 16 ] );
    ( "hot: sse loop",
      [
        with_lab "a" (fun a -> Sse (Movups (XM 0, XMem (Insn.mem_abs a))));
        with_lab "b" (fun a -> Sse (Movups (XM 1, XMem (Insn.mem_abs a))));
        a32 (Mov (S32, R Ecx, I 150));
        label "loop";
        a32 (Sse (Sse_arith (SAdd, Packed_single, 0, XM 1)));
        a32 (Sse (Sse_arith (SMul, Scalar_single, 1, XM 1)));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
        with_lab "out" (fun a -> Sse (Movups (XMem (Insn.mem_abs a), XM 0)));
      ],
      Asm.
        [ label "a"; df32 0.5; df32 1.0; df32 1.5; df32 2.0;
          label "b"; df32 0.001; df32 0.002; df32 0.003; df32 1.0000001;
          label "out"; space 16 ] );
    ( "hot: mmx loop",
      [
        with_lab "a" (fun a -> Mmx (Movq_to_mm (0, MMem (Insn.mem_abs a))));
        with_lab "b" (fun a -> Mmx (Movq_to_mm (1, MMem (Insn.mem_abs a))));
        a32 (Mov (S32, R Ecx, I 200));
        label "loop";
        a32 (Mmx (Padd (2, 0, MM 1)));
        a32 (Mmx (Pxor (1, MM 0)));
        a32 (Dec (S32, R Ecx));
        jcc Ne "loop";
        with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (Insn.mem_abs a), 0)));
        a32 (Mmx Emms);
      ],
      Asm.
        [ label "a"; dq 0x0001000200030004L; label "b"; dq 0x1111222233334444L;
          label "out"; space 8 ] );
    ( "hot: fault in hot code is precise",
      [
        (* register a #DE handler, then divide by a counter that hits zero
           only after the loop is hot *)
        a32 (Mov (S32, R Eax, I 48));
        a32 (Mov (S32, R Ebx, I 0));
        mov_ri_lab Ecx "handler";
        a32 (Int_n 0x80);
        a32 (Mov (S32, R Ebp, I 120));
        a32 (Mov (S32, R Esi, I 0));
        label "loop";
        a32 (Mov (S32, R Eax, I 1000));
        a32 Cdq;
        a32 (Mov (S32, R Ecx, R Ebp));
        a32 (Dec (S32, R Ecx)); (* becomes 0 on the last iteration *)
        a32 (Div (S32, R Ecx));
        a32 (Alu (Add, S32, R Esi, R Eax));
        a32 (Dec (S32, R Ebp));
        jcc Ne "loop";
        jmp "end";
        label "handler";
        (* skip past the faulting div: resume at "after" *)
        a32 (Mov (S32, R Edi, I 0xBEEF));
        mov_ri_lab Ebx "end";
        a32 (Mov (S32, M (Insn.mem_bd Esp 8), R Ebx));
        a32 (Alu (Add, S32, R Esp, I 8));
        a32 (Ret 0);
        label "end";
      ],
      [] );
  ]

let interpret_first_test =
  Alcotest.test_case "interpret-first mode matches and heats" `Quick (fun () ->
      let open Asm in
      let open Insn in
      let code =
        [ label "start";
          a32 (Mov (S32, R Eax, I 0));
          a32 (Mov (S32, R Ecx, I 400));
          label "loop";
          a32 (Alu (Add, S32, R Eax, R Ecx));
          a32 (Dec (S32, R Ecx));
          jcc Ne "loop" ]
      in
      let config =
        { hot_config with Config.first_phase = Config.Interpret_first }
      in
      let image =
        Asm.build ~code:(code @ epilogue) ~data:dump_space ()
      in
      let r = run_ref image in
      let e, eng = run_el ~config image in
      compare_sides "interpret-first" r e;
      check bool "interpreted some instructions" true
        (eng.Engine.acct.Account.interp_cycles > 0);
      check bool "hot code generated" true (eng.Engine.acct.Account.hot_blocks > 0))

let hot_cases =
  List.map
    (fun (name, code, data) ->
      Alcotest.test_case name `Quick (fun () -> diff_hot name code data))
    hot_programs

(* Regression: a hash loop whose trace contains a misaligned peek load. The
   hot block's commit backups must execute before the faulting load (a
   mis-scheduled backup made the commit restore copy uninitialized backup
   registers over live state and lose the outer-loop resets), and REP MOVS
   pairs exercise the renamer's loop-span lifetime extension. *)
let hot_hash_peek_program =
  let open Asm in
  let open Insn in
  let mix b i sc d = { base = Some b; index = Some (i, sc); disp = d } in
  ( [
      mov_ri_lab Esi "hsrc";
      mov_ri_lab Edi "hdict";
      a32 (Mov (S32, R Ebp, I 25));
      label "houter";
      a32 (Mov (S32, R Ecx, I 0));
      a32 (Mov (S32, R Eax, I 0));
      a32 (Mov (S32, R Ebx, I 48));
      label "hashl";
      a32 (Movzx (S8, Edx, M (mix Esi Ecx 1 0)));
      a32 (Shift (Shl, S32, R Eax, Amt_imm 5));
      a32 (Alu (Xor, S32, R Eax, R Edx));
      a32 (Alu (And, S32, R Eax, I 1023));
      a32 (Mov (S32, R Edx, M (mix Edi Eax 4 0)));
      a32 (Mov (S32, M (mix Edi Eax 4 0), R Ecx));
      a32 (Inc (S32, R Ecx));
      a32 (Alu (And, S32, R Edx, I 63));
      a32 (Mov (S32, R Edx, M (mix Esi Edx 1 1))) (* misaligned peek *);
      a32 (Dec (S32, R Ebx));
      jcc Ne "hashl";
      a32 (Dec (S32, R Ebp));
      jcc Ne "houter";
    ],
    [
      label "hsrc";
      raw (String.init 128 (fun i -> Char.chr (i * 7 land 0xFF)));
      label "hdict";
      space 4096;
    ] )

let hot_regression_cases =
  let run name config =
    Alcotest.test_case name `Quick (fun () ->
        let code, data = hot_hash_peek_program in
        let image =
          Asm.build
            ~code:(Asm.label "start" :: (code @ epilogue))
            ~data:(data @ dump_space) ()
        in
        let r = run_ref image in
        let e, eng = run_el ~config image in
        compare_sides name r e;
        check bool (name ^ ": hot blocks were generated") true
          (eng.Engine.acct.Account.hot_blocks > 0))
  in
  let rep_movs_pair =
    (* two REP MOVS in one hot trace: each is its own commit region and the
       delta registers span the backward branch (renamer loop-span bug) *)
    Alcotest.test_case "hot: double rep movs trace" `Quick (fun () ->
        let open Asm in
        let open Insn in
        let code =
          [
            a32 (Mov (S32, R Ebp, I 40));
            label "rloop";
            mov_ri_lab Esi "rsrc";
            mov_ri_lab Edi "rdst";
            a32 (Mov (S32, R Ecx, I 6));
            a32 (Movs (S32, Rep));
            a32 (Mov (S32, R Ecx, I 10));
            a32 (Movs (S8, Rep));
            a32 (Alu (Add, S32, R Ebx, R Edi));
            a32 (Dec (S32, R Ebp));
            jcc Ne "rloop";
          ]
        in
        let data =
          [
            label "rsrc";
            raw (String.init 64 (fun i -> Char.chr (i * 11 land 0xFF)));
            label "rdst";
            space 64;
          ]
        in
        diff_hot "hot: double rep movs trace" code data)
  in
  let hammock =
    (* one-sided hammock: the jcc skips a store+xchg sequence that must be
       if-converted predicated, not lost, in the hot trace *)
    Alcotest.test_case "hot: one-sided hammock if-conversion" `Quick
      (fun () ->
        let open Asm in
        let open Insn in
        let code =
          [
            mov_ri_lab Esi "hbuf";
            a32 (Mov (S32, R Ebp, I 300));
            a32 (Mov (S32, R Eax, I 12345));
            label "hloop";
            a32 (Imul_rri (Eax, R Eax, 1103515245));
            a32 (Alu (Add, S32, R Eax, I 12345));
            a32 (Mov (S32, R Ebx, R Eax));
            a32 (Alu (And, S32, R Ebx, I 31));
            a32 (Alu (Cmp, S32, R Ebx, I 20));
            jcc A "hskip";
            a32 (Mov (S32, R Edx, M { base = Some Esi; index = Some (Ebx, 4); disp = 0 }));
            a32 (Xchg (S32, M { base = Some Esi; index = Some (Ebx, 4); disp = 4 }, Edx));
            a32 (Mov (S32, M { base = Some Esi; index = Some (Ebx, 4); disp = 0 }, R Edx));
            label "hskip";
            a32 (Alu (Add, S32, R Edi, R Ebx));
            a32 (Dec (S32, R Ebp));
            jcc Ne "hloop";
          ]
        in
        let data =
          [ label "hbuf" ]
          @ List.init 36 (fun k -> dd (k * 7))
        in
        diff_hot "hot: one-sided hammock" code data)
  in
  let exit_flags =
    (* the final SHR's CF is dead inside the trace (the AND at the loop
       head kills it) but must still be correct at the loop exit: the
       lazy-flag producer must snapshot its operands even when its flags
       are dead in-trace (regression: stale canonic register in the
       pending flush) *)
    Alcotest.test_case "hot: exit flags from dead in-trace producer" `Quick
      (fun () ->
        let open Asm in
        let open Insn in
        let code =
          [
            mov_ri_lab Edi "fbuf2";
            a32 (Mov (S32, R Eax, I 0x1234567));
            a32 (Mov (S32, R Ebx, I 0x13));
            a32 (Mov (S32, R Edx, I 0x7FFF00));
            a32 (Mov (S32, R Ebp, I 0x101));
            with_lab "fctr" (fun a -> Mov (S32, M (mem_abs a), I 50));
            label "floop";
            a32 (Inc (S32, R Ebp));
            a32 (Inc (S32, R Eax));
            a32 (Alu (And, S32, R Ebp, R Ebp));
            a32 (Alu (Cmp, S32, R Ebx, I 34));
            jcc L "fskip";
            a32 (Not (S32, R Edx));
            a32 (Movzx (S8, Edx, M { base = Some Edi; index = None; disp = 0x27 }));
            label "fskip";
            a32 (Inc (S32, R Edx));
            a32 (Alu (Add, S32, R Eax, I 0x822D));
            a32 (Shift (Shr, S32, R Eax, Amt_imm 2));
            with_lab "fctr" (fun a -> Dec (S32, M (mem_abs a)));
            jcc Ne "floop";
          ]
        in
        let data = [ label "fbuf2"; space 64; label "fctr"; space 4 ] in
        diff_hot "hot: dead in-trace exit flags" code data)
  in
  let spec_filter =
    (* control speculation (paper §4.2): the hot scheduler hoists the
       list-walk load above the null-check exit as ld.s; on the final
       iteration the speculative load faults, the NaT dies unobserved
       when the exit fires, and the guest never sees an exception *)
    Alcotest.test_case "hot: speculative load fault is filtered" `Quick
      (fun () ->
        let open Asm in
        let open Insn in
        let code =
          [
            a32 (Mov (S32, R Ebp, I 120));
            label "souter";
            mov_ri_lab Edx "sn0";
            a32 (Mov (S32, R Eax, I 0));
            label "swalk";
            a32 (Alu (Cmp, S32, R Edx, I 0));
            jcc E "sdone";
            a32 (Alu (Add, S32, R Eax, M (Insn.mem_bd Edx 4)));
            a32 (Mov (S32, R Edx, M (Insn.mem_b Edx)));
            jmp "swalk";
            label "sdone";
            a32 (Alu (Add, S32, R Ebx, R Eax));
            a32 (Dec (S32, R Ebp));
            jcc Ne "souter";
          ]
        in
        let data =
          [
            label "sn0"; dd_lab "sn1"; dd 5;
            label "sn1"; dd_lab "sn2"; dd 7;
            label "sn2"; dd 0; dd 11;
          ]
        in
        diff_hot "hot: filtered speculative fault" code data)
  in
  let spec_recover =
    (* the same walk where the poisoned pointer IS dereferenced: the
       chk.s catches the deferred fault and the engine re-raises it
       precisely (same fault, EIP and registers as the interpreter) *)
    Alcotest.test_case "hot: speculative load fault is delivered" `Quick
      (fun () ->
        let open Asm in
        let open Insn in
        let code =
          [
            label "start";
            a32 (Mov (S32, R Ebp, I 120));
            label "pouter";
            mov_ri_lab Edx "pn0";
            a32 (Mov (S32, R Eax, I 0));
            label "pwalk";
            a32 (Alu (Cmp, S32, R Edx, I 0));
            jcc E "pdone";
            a32 (Alu (Add, S32, R Eax, M (Insn.mem_bd Edx 4)));
            a32 (Mov (S32, R Edx, M (Insn.mem_b Edx)));
            jmp "pwalk";
            label "pdone";
            (* after 60 iterations, poison pn1.next with an unmapped
               pointer so the next pass dereferences it *)
            a32 (Alu (Cmp, S32, R Ebp, I 60));
            jcc Ne "skip_poison";
            with_lab "pn1" (fun a -> Mov (S32, M (mem_abs a), I 0x30000000));
            label "skip_poison";
            a32 (Dec (S32, R Ebp));
            jcc Ne "pouter";
          ]
          @ epilogue
        in
        let data =
          [
            label "pn0"; dd_lab "pn1"; dd 5;
            label "pn1"; dd_lab "pn2"; dd 7;
            label "pn2"; dd 0; dd 11;
          ]
          @ dump_space
        in
        let image = Asm.build ~code ~data () in
        let r = run_ref image in
        let e, eng = run_el ~config:hot_config image in
        compare_sides ~compare_flags:false "spec-recover" r e;
        check bool "hot code was generated" true
          (eng.Engine.acct.Account.hot_blocks > 0))
  in
  [
    hammock;
    exit_flags;
    spec_filter;
    spec_recover;
    run "hot: hash loop with misaligned peek" hot_config;
    run "hot: hash loop, no flag elimination"
      { hot_config with Config.enable_flag_elim = false };
    run "hot: hash loop, no scheduling"
      { hot_config with Config.enable_scheduling = false };
    rep_movs_pair;
  ]

let random_loop_diff ~name ~count ~config =
  QCheck.Test.make ~name ~count arbitrary_prog (fun insns ->
      (* wrap the random body in a loop so it heats and gets re-translated *)
      let open Asm in
      let open Insn in
      let safe =
        (* exclude stack-unbalanced ops inside the loop *)
        List.filter
          (function Push _ | Pop _ -> false | _ -> true)
          insns
      in
      QCheck.assume (safe <> []);
      let prologue =
        [
          label "start";
          mov_ri_lab Esi "buf";
          mov_ri_lab Edi "buf2";
          a32 (Mov (S32, R Eax, I 0x12345678));
          a32 (Mov (S32, R Ebx, I 0x9ABCDEF0));
          a32 (Mov (S32, R Edx, I 0x7FFFFFFF));
          a32 (Mov (S32, R Ebp, I 0x00000101));
          with_lab "ctr" (fun a -> Mov (S32, M (mem_abs a), I 60));
          label "loop";
        ]
      in
      let back =
        [
          with_lab "ctr" (fun a -> Dec (S32, M (mem_abs a)));
          jcc Ne "loop";
        ]
      in
      let data =
        [ label "buf"; space 64; label "buf2"; space 64; label "ctr"; space 4 ]
        @ dump_space
      in
      let image =
        Asm.build
          ~code:(prologue @ List.map a32 safe @ back @ epilogue)
          ~data ()
      in
      let r = run_ref image in
      let e, _ = run_el ~config image in
      (match (r.outcome, e.outcome) with
      | `Exit a, `Exit b when a = b -> ()
      | `Fault a, `Fault b when Fault.equal a b -> ()
      | _ -> QCheck.Test.fail_reportf "outcomes differ");
      if r.data_bytes <> e.data_bytes then QCheck.Test.fail_reportf "data differs";
      if r.stack_bytes <> e.stack_bytes then QCheck.Test.fail_reportf "stack differs";
      List.for_all
        (fun reg -> State.get32 r.st reg = State.get32 e.st reg)
        Insn.all_regs)

let random_hot_diff_test =
  random_loop_diff ~name:"random loop differential (hot path)" ~count:150
    ~config:hot_config

let random_if_diff_test =
  (* the FX!32-style first phase: interpret, profile, then hot-translate *)
  random_loop_diff ~name:"random loop differential (interpret-first)"
    ~count:80
    ~config:
      {
        hot_config with
        Config.first_phase = Config.Interpret_first;
        heat_threshold = 10;
      }

let random_flush_diff_test =
  (* a translation cache small enough to flush several times per run *)
  random_loop_diff ~name:"random loop differential (cache flushes)"
    ~count:80
    ~config:{ hot_config with Config.tcache_limit = 150 }

let diff_cases progs =
  List.map
    (fun (name, code, data) ->
      Alcotest.test_case name `Quick (fun () -> diff_both name code data))
    progs

(* Random hammock differential: straight-line bodies plus a one-sided
   skip (cmp; jcc over a few predicable instructions), wrapped in a loop
   so the hot phase if-converts the hammock. *)
let gen_plain_insn =
  let open QCheck.Gen in
  let open Insn in
  let reg = oneofl [ Eax; Ebx; Edx; Ebp ] in
  oneof
    [
      (let* op = oneofl [ Add; Sub; Xor; And; Or ] in
       let* d = reg in
       let* s = reg in
       return (Alu (op, S32, R d, R s)));
      (let* d = reg in
       let* v = int_bound 0xFFFF in
       return (Alu (Add, S32, R d, I v)));
      (let* sh = oneofl [ Shl; Shr; Ror ] in
       let* d = reg in
       let* n = int_bound 7 in
       return (Shift (sh, S32, R d, Amt_imm n)));
      (let* d = reg in
       return (Inc (S32, R d)));
      (let* d = reg in
       return (Neg (S32, R d)));
    ]

let gen_hammock_prog =
  let open QCheck.Gen in
  let open Insn in
  let reg = oneofl [ Eax; Ebx; Edx; Ebp ] in
  let mem_op =
    let* base = oneofl [ Esi; Edi ] in
    let* d = int_bound 40 in
    return { base = Some base; index = None; disp = d }
  in
  let predicable_insn =
    oneof
      [
        (let* r = reg in
         let* m = mem_op in
         return (Mov (S32, R r, M m)));
        (let* m = mem_op in
         let* r = reg in
         return (Mov (S32, M m, R r)));
        (let* r = reg in
         let* r2 = reg in
         return (Mov (S32, R r, R r2)));
        (let* r = reg in
         return (Not (S32, R r)));
        (let* m = mem_op in
         let* r = reg in
         return (Xchg (S32, M m, r)));
        (let* r = reg in
         let* m = mem_op in
         return (Movzx (S8, r, M m)));
      ]
  in
  let* pre = list_size (int_range 1 4) gen_plain_insn in
  let* side = list_size (int_range 1 3) predicable_insn in
  let* post = list_size (int_range 0 3) gen_plain_insn in
  let* c = oneofl [ E; Ne; S; L; G; A; Be ] in
  let* k = int_bound 40 in
  return (pre, c, k, side, post)

let arbitrary_hammock =
  QCheck.make
    ~print:(fun (pre, c, k, side, post) ->
      Printf.sprintf "pre=[%s] cmp ebx,%d jcc-%s skip [%s] post=[%s]"
        (String.concat "; " (List.map verbose_insn pre))
        k
        (Insn.cond_name c)
        (String.concat "; " (List.map verbose_insn side))
        (String.concat "; " (List.map verbose_insn post)))
    gen_hammock_prog

let random_hammock_test =
  QCheck.Test.make ~name:"random hammock differential (if-conversion)"
    ~count:150 arbitrary_hammock (fun (pre, c, k, side, post) ->
      let open Asm in
      let open Insn in
      let prologue =
        [
          label "start";
          mov_ri_lab Esi "buf";
          mov_ri_lab Edi "buf2";
          a32 (Mov (S32, R Eax, I 0x1234567));
          a32 (Mov (S32, R Ebx, I 0x13));
          a32 (Mov (S32, R Edx, I 0x7FFF00));
          a32 (Mov (S32, R Ebp, I 0x101));
          with_lab "ctr" (fun a -> Mov (S32, M (mem_abs a), I 50));
          label "loop";
        ]
      in
      let body =
        List.map a32 pre
        @ [ a32 (Alu (Cmp, S32, R Ebx, I k)); jcc c "skip" ]
        @ List.map a32 side
        @ [ label "skip" ]
        @ List.map a32 post
      in
      let back =
        [
          with_lab "ctr" (fun a -> Dec (S32, M (mem_abs a)));
          jcc Ne "loop";
        ]
      in
      let data =
        [ label "buf"; space 64; label "buf2"; space 64; label "ctr"; space 4 ]
        @ dump_space
      in
      let image =
        Asm.build ~code:(prologue @ body @ back @ epilogue) ~data ()
      in
      let r = run_ref image in
      let e, _ = run_el ~config:hot_config image in
      (match (r.outcome, e.outcome) with
      | `Exit a, `Exit b when a = b -> ()
      | `Fault a, `Fault b when Fault.equal a b -> ()
      | _ -> QCheck.Test.fail_reportf "outcomes differ");
      if r.data_bytes <> e.data_bytes then
        QCheck.Test.fail_reportf "data differs";
      List.for_all
        (fun reg -> State.get32 r.st reg = State.get32 e.st reg)
        Insn.all_regs)

let () =
  Alcotest.run "ia32el-core"
    [
      ("diff-int", diff_cases (int_programs @ fault_and_indirect_programs));
      ("diff-x87", diff_cases (x87_programs @ x87_extra_programs));
      ("diff-mmx-sse", diff_cases mmx_sse_programs);
      ("diff-misalign", diff_cases misalign_programs);
      ("diff-hot", (interpret_first_test :: hot_cases) @ hot_regression_cases);
      ("mechanisms", mechanism_tests);
      ( "random",
        [
          QCheck_alcotest.to_alcotest random_diff_test;
          QCheck_alcotest.to_alcotest random_fp_diff_test;
          QCheck_alcotest.to_alcotest random_hot_diff_test;
          QCheck_alcotest.to_alcotest random_hammock_test;
          QCheck_alcotest.to_alcotest random_if_diff_test;
          QCheck_alcotest.to_alcotest random_flush_diff_test;
        ] );
    ]
