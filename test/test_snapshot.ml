(* Snapshot / record-replay robustness suite.

   The tentpole property: a guest reverted to a snapshot and rerun is
   bit-identical — same virtual cycle count, same trace-event stream,
   same exit code and console output — to a fresh run, across the
   predecode x decode-cache configuration matrix, including a
   multithreaded guest whose run crosses a cross-thread SMC shootdown.
   On top: crash-capsule round trips (watchdog and seeded-divergence
   capsules must replay to the same failure with every commit point
   matching) and fork-server equivalence (a snapshotted/reverted session
   must classify inputs exactly as one-shot lockstep runs do). *)

module E = Ia32el.Engine
module F = Harness.Fuzz
module Cap = Harness.Capsule
module R = Harness.Resilience
module Memory = Ia32.Memory

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Configuration matrix                                                *)
(* ------------------------------------------------------------------ *)

let configs =
  let d = Ia32el.Config.default in
  [
    ("default", d);
    ("no-predecode", { d with Ia32el.Config.enable_predecode = false });
    ("no-decode-cache", { d with Ia32el.Config.enable_decode_cache = false });
    ( "neither",
      {
        d with
        Ia32el.Config.enable_predecode = false;
        Ia32el.Config.enable_decode_cache = false;
      } );
  ]

(* ------------------------------------------------------------------ *)
(* Observables of one engine run                                       *)
(* ------------------------------------------------------------------ *)

type obs = { res : string; clock : int; output : string; events : int }

let pp_obs ppf o =
  Format.fprintf ppf "%s clock=%d events=%d out=%S" o.res o.clock o.events
    o.output

let obs_t = Alcotest.testable pp_obs ( = )

let observe_run eng tr st =
  let i0 = Obs.Trace.absolute_index tr in
  let res =
    match E.run ~fuel:10_000_000 eng st with
    | E.Exited (code, _) -> Printf.sprintf "exit %d" code
    | E.Out_of_fuel -> "fuel"
    | E.Unhandled_fault (f, _) -> "fault " ^ Ia32.Fault.to_string f
  in
  {
    res;
    clock = E.clock eng;
    output = Btlib.Vos.output eng.E.vos;
    events = Obs.Trace.absolute_index tr - i0;
  }

let fresh_engine config image =
  let mem = Memory.create () in
  let st = Ia32.Asm.load ~writable_code:true image mem in
  let eng = E.create ~config ~btlib:(module Btlib.Linuxsim) mem in
  let tr = Obs.Trace.create () in
  E.attach_trace eng tr;
  (eng, tr, st)

(* Deterministically pick fuzz programs whose pools cover the features
   we want the snapshot to cross (generation is seeded, so the search
   result is stable). *)
let find_prog ~want ~max_insns =
  let rng = F.Rng.create 99 in
  let rec go seed =
    if seed > 2000 then
      Alcotest.failf "no generated program with pools [%s]"
        (String.concat "; " want)
    else
      let p = F.generate ~rng ~max_insns seed in
      let pools = F.pools p in
      if List.for_all (fun w -> List.mem w pools) want then p
      else go (seed + 1)
  in
  go 0

(* snapshot(barrier) -> run -> revert -> rerun must equal a fresh run in
   every observable, repeatedly; a committed epoch keeps its run. *)
let revert_rerun_case name image =
  List.map
    (fun (cname, config) ->
      Alcotest.test_case
        (Printf.sprintf "%s bit-identical revert+rerun [%s]" name cname)
        `Quick
        (fun () ->
          let eng_a, tr_a, st_a = fresh_engine config image in
          let fresh = observe_run eng_a tr_a st_a in
          let eng, tr, st = fresh_engine config image in
          (* the snapshot must see the main thread in the Vos table even
             though [E.run] has not registered it yet; reverting then
             restores the initial state back into [st] itself *)
          Btlib.Vos.register_main eng.E.vos st;
          ignore (E.snapshot ~barrier:true eng);
          check obs_t "run 1 (from snapshot) == fresh" fresh
            (observe_run eng tr st);
          ignore (E.revert eng);
          check int "epoch popped" 0 (E.snapshot_depth eng);
          ignore (E.snapshot ~barrier:true eng);
          check obs_t "run 2 (after revert) == fresh" fresh
            (observe_run eng tr st);
          ignore (E.revert eng);
          (* nested: outer epoch around an inner committed one — the
             committed run's changes persist relative to the inner epoch *)
          ignore (E.snapshot ~barrier:true eng);
          ignore (E.snapshot ~barrier:true eng);
          check int "two epochs open" 2 (E.snapshot_depth eng);
          let again = observe_run eng tr st in
          check obs_t "run 3 (nested epoch) == fresh" fresh again;
          E.commit_snapshot eng;
          check int "inner epoch folded away" 1 (E.snapshot_depth eng);
          ignore (E.revert eng);
          ignore (E.snapshot ~barrier:true eng);
          check obs_t "run 4 (outer revert undid the commit)" fresh
            (observe_run eng tr st);
          ignore (E.revert eng)))
    configs

let matrix_tests =
  (* plain single-threaded program with syscalls *)
  let basic = find_prog ~want:[ "alu" ] ~max_insns:32 in
  (* self-modifying code crossing the revert *)
  let smc = find_prog ~want:[ "smc" ] ~max_insns:40 in
  revert_rerun_case "alu" (F.build_image basic)
  @ revert_rerun_case "smc" (F.build_image smc)

(* ------------------------------------------------------------------ *)
(* Cross-thread SMC shootdown crossed by a revert                      *)
(* ------------------------------------------------------------------ *)

let smc_thread_tests =
  (* a program that both spawns guest threads and self-modifies: the
     snapshot/revert must rewind the SMC shootdown (invalidated blocks,
     watch set, pending work) and the whole thread table. Pool labels
     alone don't guarantee the generated program actually spawns and
     self-modifies at runtime (the pool mix shifts as generators are
     added), so run each candidate and demand both event kinds. *)
  let exercises_both image =
    try
      let eng, tr, st = fresh_engine Ia32el.Config.default image in
      let _ = observe_run eng tr st in
      let evs = Obs.Trace.events tr in
      let has p = List.exists p evs in
      has (fun e ->
          match e.Obs.Trace.ev with
          | Obs.Trace.Smc_invalidation _ -> true
          | _ -> false)
      && has (fun e ->
             match e.Obs.Trace.ev with
             | Obs.Trace.Thread_spawn _ -> true
             | _ -> false)
    with _ -> false
  in
  let prog =
    let rng = F.Rng.create 99 in
    let rec go seed =
      if seed > 2000 then
        Alcotest.fail "no generated program exercising smc+threads"
      else
        let p = F.generate ~rng ~max_insns:48 seed in
        let pools = F.pools p in
        if
          List.for_all (fun w -> List.mem w pools) [ "smc"; "threads" ]
          && exercises_both (F.build_image p)
        then p
        else go (seed + 1)
    in
    go 0
  in
  let image = F.build_image prog in
  [
    Alcotest.test_case "guest program exercises SMC and threads" `Quick
      (fun () ->
        let eng, tr, st = fresh_engine Ia32el.Config.default image in
        let _ = observe_run eng tr st in
        let evs = Obs.Trace.events tr in
        let count p = List.length (List.filter p evs) in
        check bool "SMC invalidations happened" true
          (count (fun e ->
               match e.Obs.Trace.ev with
               | Obs.Trace.Smc_invalidation _ -> true
               | _ -> false)
          > 0);
        check bool "guest threads ran" true
          (count (fun e ->
               match e.Obs.Trace.ev with
               | Obs.Trace.Thread_spawn _ -> true
               | _ -> false)
          > 0))
  ]
  @ revert_rerun_case "smc+threads" image

(* ------------------------------------------------------------------ *)
(* Warm (non-barrier) revert: same architectural results, warm blocks  *)
(* ------------------------------------------------------------------ *)

let warm_revert_tests =
  let prog = find_prog ~want:[ "alu" ] ~max_insns:32 in
  let image = F.build_image prog in
  [
    Alcotest.test_case "warm revert preserves results across reruns" `Quick
      (fun () ->
        (* without the barrier, translations stay warm, so virtual time
           can differ from a fresh run (translation overhead is not
           re-paid) — but the architectural observables must not *)
        let eng_a, tr_a, st_a = fresh_engine Ia32el.Config.default image in
        let fresh = observe_run eng_a tr_a st_a in
        let eng, tr, st = fresh_engine Ia32el.Config.default image in
        Btlib.Vos.register_main eng.E.vos st;
        let restored0 = E.pages_restored eng in
        for i = 1 to 4 do
          ignore (E.snapshot eng);
          let r = observe_run eng tr st in
          check string (Printf.sprintf "run %d result" i) fresh.res r.res;
          check string (Printf.sprintf "run %d output" i) fresh.output r.output;
          ignore (E.revert eng)
        done;
        check bool "reverts restored pages" true
          (E.pages_restored eng > restored0));
  ]

(* ------------------------------------------------------------------ *)
(* The arch layer on its own (Ia32.Snapshot)                           *)
(* ------------------------------------------------------------------ *)

let arch_layer_tests =
  let module S = Ia32.Snapshot in
  [
    Alcotest.test_case "push/revert restores memory, state, watch set" `Quick
      (fun () ->
        let mem = Memory.create () in
        Memory.map mem ~addr:0x1000 ~len:0x3000 ~prot:Memory.prot_rwx;
        Memory.write32 mem 0x1000 0xAAAA;
        Memory.watch_page mem (0x1000 / Memory.page_size);
        let st = Ia32.State.create mem in
        st.Ia32.State.eip <- 0x1234;
        let snap = S.start mem in
        S.push snap [ st ];
        check int "depth" 1 (S.depth snap);
        Memory.write32 mem 0x1000 0xBBBB;
        Memory.write32 mem 0x2000 0x1;
        Memory.unwatch_page mem (0x1000 / Memory.page_size);
        st.Ia32.State.eip <- 0x9999;
        let touched = S.revert snap in
        check int "depth popped" 0 (S.depth snap);
        check int "O(pages touched)" 2 (List.length touched);
        check int "bytes restored" 0xAAAA (Memory.read32 mem 0x1000);
        check int "eip restored in place" 0x1234 st.Ia32.State.eip;
        check bool "watch set restored" true
          (Memory.page_watched mem (0x1000 / Memory.page_size));
        check int "pages_restored counts" 2 (S.pages_restored snap));
    Alcotest.test_case "nested epochs: commit folds, outer reverts" `Quick
      (fun () ->
        let mem = Memory.create () in
        Memory.map mem ~addr:0x1000 ~len:0x1000 ~prot:Memory.prot_rw;
        Memory.write32 mem 0x1000 1;
        let st = Ia32.State.create mem in
        let snap = S.start mem in
        S.push snap [ st ];
        Memory.write32 mem 0x1000 2;
        S.push snap [ st ];
        Memory.write32 mem 0x1000 3;
        S.commit snap;
        check int "committed value kept" 3 (Memory.read32 mem 0x1000);
        ignore (S.revert snap);
        check int "outer revert undoes the commit" 1
          (Memory.read32 mem 0x1000);
        check bool "revert with no epoch raises" true
          (match S.revert snap with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Crash capsules round-trip                                           *)
(* ------------------------------------------------------------------ *)

let tmp_capsule name = Filename.concat (Filename.get_temp_dir_name ()) name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let capsule_tests =
  [
    Alcotest.test_case "watchdog capsule replays bit-identically" `Quick
      (fun () ->
        let file = tmp_capsule "ia32el-test-watchdog.capsule" in
        let w =
          Workloads.Threads.producer_consumer
            ~workers:Workloads.Threads.default_workers
        in
        (match
           R.run_plain ~max_cycles:30_000 ~snap_every:4 ~capsule:file w
             ~scale:1
         with
        | _ -> Alcotest.fail "watchdog did not trip"
        | exception Ia32el.Bt_error.Error e ->
          check string "watchdog component" "watchdog"
            e.Ia32el.Bt_error.component);
        check bool "capsule file exists" true (Sys.file_exists file);
        let c = Cap.load file in
        let v = Cap.replay c in
        check bool "reproduced" true v.Cap.v_reproduced;
        check int "all recorded commits matched" v.Cap.v_log_total
          v.Cap.v_log_match;
        Sys.remove file);
    Alcotest.test_case "divergence capsule replays deterministically" `Quick
      (fun () ->
        (* seeded register corruption -> lockstep divergence; the capsule
           records the sabotage spec, so replay reinstalls it and must
           reproduce the same diverging commit *)
        let file = tmp_capsule "ia32el-test-divergence.capsule" in
        let sb =
          match Cap.parse_sabotage "40:esi:0xBEEF" with
          | Ok sb -> sb
          | Error e -> Alcotest.fail e
        in
        let w =
          Workloads.Threads.producer_consumer
            ~workers:Workloads.Threads.default_workers
        in
        let r = R.run_lockstep ~sabotage:sb ~capsule:file w ~scale:1 in
        (match r.R.report.Ia32el.Lockstep.divergence with
        | None -> Alcotest.fail "sabotage did not diverge"
        | Some _ -> ());
        check bool "capsule written" true (r.R.capsule_written = Some file);
        let c = Cap.load file in
        let v = Cap.replay c in
        check bool "reproduced" true v.Cap.v_reproduced;
        check int "all recorded commits matched" v.Cap.v_log_total
          v.Cap.v_log_match;
        Sys.remove file);
    Alcotest.test_case "capsule describe is stable across save/load" `Quick
      (fun () ->
        let file = tmp_capsule "ia32el-test-roundtrip.capsule" in
        let w =
          Workloads.Threads.producer_consumer
            ~workers:Workloads.Threads.default_workers
        in
        (try ignore (R.run_plain ~max_cycles:30_000 ~capsule:file w ~scale:1)
         with Ia32el.Bt_error.Error _ -> ());
        let c1 = Cap.load file in
        let c2 = Cap.load file in
        check string "describe" (Cap.describe c1) (Cap.describe c2);
        check bool "mentions the watchdog" true
          (contains ~sub:"watchdog" (Cap.describe c1));
        Sys.remove file);
    Alcotest.test_case "load rejects a non-capsule file" `Quick (fun () ->
        let file = tmp_capsule "ia32el-test-bogus.capsule" in
        let oc = open_out_bin file in
        Marshal.to_channel oc "not a capsule" [];
        close_out oc;
        (match Cap.load file with
        | _ -> Alcotest.fail "bogus file accepted"
        | exception _ -> ());
        Sys.remove file);
    Alcotest.test_case "load rejects a config-fingerprint mismatch" `Quick
      (fun () ->
        let file = tmp_capsule "ia32el-test-fp.capsule" in
        let w =
          Workloads.Threads.producer_consumer
            ~workers:Workloads.Threads.default_workers
        in
        (try ignore (R.run_plain ~max_cycles:30_000 ~capsule:file w ~scale:1)
         with Ia32el.Bt_error.Error _ -> ());
        (* a capsule from a build whose translation semantics drifted:
           same config, different fingerprint *)
        Cap.save file (Cap.corrupt_config_fp (Cap.load file) 0xDEADL);
        (match Cap.load file with
        | _ -> Alcotest.fail "incompatible capsule accepted"
        | exception Ia32el.Bt_error.Error e ->
          check string "structured component" "capsule"
            e.Ia32el.Bt_error.component);
        Sys.remove file);
    Alcotest.test_case "load rejects a perf-flag config mismatch" `Quick
      (fun () ->
        (* a capsule recorded under one fusion / hot-counter setting must
           not replay against the flipped flag: the fingerprint embedded
           in the capsule covers both switches *)
        let file = tmp_capsule "ia32el-test-perf-fp.capsule" in
        let w =
          Workloads.Threads.producer_consumer
            ~workers:Workloads.Threads.default_workers
        in
        (try ignore (R.run_plain ~max_cycles:30_000 ~capsule:file w ~scale:1)
         with Ia32el.Bt_error.Error _ -> ());
        let pristine = Cap.load file in
        let d = Ia32el.Config.default in
        List.iter
          (fun (fname, flipped) ->
            Cap.save file
              (Cap.corrupt_config_fp pristine
                 (Persist.config_fingerprint flipped));
            match Cap.load file with
            | _ -> Alcotest.failf "%s-mismatched capsule accepted" fname
            | exception Ia32el.Bt_error.Error e ->
              check string "structured component" "capsule"
                e.Ia32el.Bt_error.component)
          [
            ( "fusion",
              { d with
                Ia32el.Config.enable_fusion =
                  not d.Ia32el.Config.enable_fusion } );
            ( "hot-counter",
              { d with
                Ia32el.Config.enable_hot_counters =
                  not d.Ia32el.Config.enable_hot_counters } );
          ];
        Sys.remove file);
  ]

(* ------------------------------------------------------------------ *)
(* Fork-server equivalence                                             *)
(* ------------------------------------------------------------------ *)

let classify = function
  | F.R_ok { commits; exit_code } ->
    Printf.sprintf "ok commits=%d exit=%d" commits exit_code
  | F.R_halted f -> "halted " ^ Ia32.Fault.to_string f
  | F.R_fuel -> "fuel"
  | F.R_diverged d ->
    Printf.sprintf "diverged@%d" d.Ia32el.Lockstep.commit_index
  | F.R_crash m -> "crash " ^ m

let forkserver_tests =
  [
    Alcotest.test_case "server base run equals one-shot lockstep" `Quick
      (fun () ->
        let rng = F.Rng.create 7 in
        for seed = 0 to 3 do
          let prog = F.generate ~rng ~max_insns:32 seed in
          let expect = classify (F.run_one prog).F.result in
          let srv = F.server_start prog in
          (* the base input, repeatedly: every run goes through a fresh
             snapshot/revert pair and must classify identically *)
          for i = 1 to 3 do
            check string
              (Printf.sprintf "seed %d run %d" seed i)
              expect
              (classify (F.server_run srv []))
          done
        done);
    Alcotest.test_case "mutated runs leave no residue" `Quick (fun () ->
        let rng = F.Rng.create 11 in
        let prog = F.generate ~rng ~max_insns:32 5 in
        let expect = classify (F.run_one prog).F.result in
        let srv = F.server_start prog in
        let mrng = F.Rng.create 13 in
        for _ = 1 to 10 do
          let muts =
            List.init
              (1 + F.Rng.int mrng 32)
              (fun _ -> (F.Rng.int mrng F.mutation_span, F.Rng.int mrng 256))
          in
          (* a mutated run may legitimately change the guest's results;
             it must still be lockstep-clean (no divergence/crash) *)
          (match F.server_run srv muts with
          | F.R_ok _ | F.R_halted _ | F.R_fuel -> ()
          | r -> Alcotest.failf "mutated run misbehaved: %s" (classify r));
          (* and the base input must classify as before afterwards *)
          check string "base input unchanged" expect
            (classify (F.server_run srv []))
        done;
        check bool "reverts restored pages" true
          (F.server_pages_restored srv > 0));
    Alcotest.test_case "forkserver campaign smoke is clean" `Quick (fun () ->
        let r =
          F.forkserver_campaign
            {
              F.fs_seed = 3;
              fs_programs = 2;
              fs_mutations = 8;
              fs_max_insns = 24;
              fs_fuel = 12_000_000;
              fs_max_findings = 5;
              fs_log = ignore;
            }
        in
        check int "bases" 2 r.F.fs_bases;
        check int "runs" (2 * 9) r.F.fs_runs;
        check int "no findings" 0 (List.length r.F.fs_findings));
  ]

(* ------------------------------------------------------------------ *)
(* Auto-snapshot cadence and time-travel anchors                       *)
(* ------------------------------------------------------------------ *)

let cadence_tests =
  [
    Alcotest.test_case "snap-every leaves anchored epochs behind" `Quick
      (fun () ->
        (* needs mid-run syscall commits: thread atoms spawn/join/futex *)
        let prog = find_prog ~want:[ "threads" ] ~max_insns:48 in
        let image = F.build_image prog in
        let eng, tr, st = fresh_engine Ia32el.Config.default image in
        eng.E.snap_every <- Some 1;
        let _ = observe_run eng tr st in
        check bool "epochs were opened" true (E.snapshot_depth eng > 0);
        (* every Snapshot trace event's recorded index must map back to
           its own epoch through the time-travel query *)
        let snaps = ref 0 in
        List.iter
          (fun e ->
            match e.Obs.Trace.ev with
            | Obs.Trace.Snapshot { epoch; event_index } ->
              incr snaps;
              check (Alcotest.option int) "epoch_for_event" (Some epoch)
                (E.epoch_for_event eng event_index)
            | _ -> ())
          (Obs.Trace.events tr);
        check bool "snapshot events traced" true (!snaps > 0));
  ]

let () =
  Alcotest.run "snapshot"
    [
      ("revert-rerun-matrix", matrix_tests);
      ("smc-threads", smc_thread_tests);
      ("warm-revert", warm_revert_tests);
      ("arch-layer", arch_layer_tests);
      ("capsules", capsule_tests);
      ("forkserver", forkserver_tests);
      ("cadence", cadence_tests);
    ]
