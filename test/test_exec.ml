(* Direct-threaded execution core tests.

   The pre-decoded machine core ({!Ipf.Exec}) and the interpreter's
   decode cache ({!Ia32.Icache}) are host-speed switches: every simulated
   observable — cycle counts, bucket splits, the full metrics snapshot —
   must be bit-identical with them on or off. These tests pin that, the
   SMC behaviour of the decode cache, and the allocation budget of both
   inner loops (the direct-threaded design only pays off if the hot paths
   stay off the minor heap). *)

module B = Workloads.Baselines
module E = Ia32el.Engine
module J = Obs.Metrics
module F = Harness.Fuzz

let check = Alcotest.check
let checki = check Alcotest.int
let checks = check Alcotest.string

let cfg ~pre ~dc =
  {
    Ia32el.Config.default with
    Ia32el.Config.enable_predecode = pre;
    Ia32el.Config.enable_decode_cache = dc;
  }

(* One workload run reduced to everything observable: final cycle count,
   the bucket distribution, and the whole metrics JSON. *)
let observables config w =
  let r = B.run_el ~config w ~scale:1 in
  let dist =
    match r.B.distribution with
    | Some d ->
      Printf.sprintf "hot=%d cold=%d ov=%d other=%d idle=%d total=%d"
        d.Ia32el.Account.hot d.Ia32el.Account.cold d.Ia32el.Account.overhead
        d.Ia32el.Account.other d.Ia32el.Account.idle d.Ia32el.Account.total
    | None -> "none"
  in
  let metrics =
    match r.B.engine with
    | Some e -> J.json_to_string (J.to_json (E.metrics e))
    | None -> "none"
  in
  (r.B.cycles, dist, metrics)

(* ---------------- determinism: workloads ---------------- *)

let test_workload_determinism () =
  let ws =
    [ Workloads.Spec_int.gzip; Workloads.Spec_fp.swim; Workloads.Sysmark.office ]
  in
  List.iter
    (fun w ->
      let name = w.Workloads.Common.name in
      let base_cycles, base_dist, base_metrics =
        observables (cfg ~pre:true ~dc:true) w
      in
      List.iter
        (fun (pre, dc) ->
          let c, d, m = observables (cfg ~pre ~dc) w in
          let tag =
            Printf.sprintf "%s pre=%b dc=%b" name pre dc
          in
          checki (tag ^ " cycles") base_cycles c;
          checks (tag ^ " distribution") base_dist d;
          checks (tag ^ " metrics") base_metrics m)
        [ (true, false); (false, true); (false, false) ])
    ws

(* Run the same workload twice under the same config: the metrics snapshot
   itself must be reproducible (guards hidden wall-clock or hash-order
   nondeterminism in anything [metrics] reports). *)
let test_repeat_determinism () =
  let a = observables (cfg ~pre:true ~dc:true) Workloads.Spec_int.gzip in
  let b = observables (cfg ~pre:true ~dc:true) Workloads.Spec_int.gzip in
  checks "repeat run metrics"
    (let _, _, m = a in m)
    (let _, _, m = b in m)

(* ---------------- determinism: fuzz corpus ---------------- *)

(* A small generated corpus (including SMC patch atoms) through lockstep
   under all four switch settings: same result class, no divergence, and
   the engine-side metrics bit-identical across settings. *)
let test_fuzz_determinism () =
  let rng = F.Rng.create 0x5eed in
  for seed = 1 to 12 do
    let prog = F.generate ~rng ~max_insns:60 seed in
    let run config =
      let exec = F.run_one ~config ~fuel:2_000_000 prog in
      let cls =
        match exec.F.result with
        | F.R_ok { commits; exit_code } ->
          Printf.sprintf "ok commits=%d exit=%d" commits exit_code
        | F.R_halted f -> "halted " ^ Ia32.Fault.to_string f
        | F.R_fuel -> "fuel"
        | F.R_diverged _ -> "DIVERGED"
        | F.R_crash msg -> "CRASH " ^ msg
      in
      let metrics =
        match exec.F.engine with
        | Some e -> J.json_to_string (J.to_json (E.metrics e))
        | None -> "none"
      in
      (cls, metrics)
    in
    let base_cls, base_metrics = run (cfg ~pre:true ~dc:true) in
    (match String.index_opt base_cls 'D' with
    | Some 0 -> Alcotest.failf "seed %d diverged: %s" seed base_cls
    | _ -> ());
    List.iter
      (fun (pre, dc) ->
        let cls, metrics = run (cfg ~pre ~dc) in
        let tag = Printf.sprintf "seed %d pre=%b dc=%b" seed pre dc in
        checks (tag ^ " class") base_cls cls;
        checks (tag ^ " metrics") base_metrics metrics)
      [ (true, false); (false, true); (false, false) ]
  done

(* ---------------- decode cache vs self-modifying code ---------------- *)

(* A program patches the immediate of an instruction it already executed,
   then loops back over it. The write bumps the source page's generation,
   so the cached decode must miss and the new immediate must take effect
   on the very next fetch. A stale decode yields EDI = 2 instead of 6. *)
let smc_image () =
  let open Ia32.Insn in
  Ia32.Asm.build
    ~code:
      [
        Ia32.Asm.label "start";
        Ia32.Asm.i (Mov (S32, R Ecx, I 2));
        Ia32.Asm.i (Mov (S32, R Edi, I 0));
        Ia32.Asm.label "loop";
        Ia32.Asm.label "t";
        Ia32.Asm.i (Mov (S32, R Ebx, I 1));
        Ia32.Asm.i (Alu (Add, S32, R Edi, R Ebx));
        (* patch t's imm32 low byte: mov byte [t+1], 5 *)
        Ia32.Asm.with_lab "t" (fun a -> Mov (S8, M (mem_abs (a + 1)), I 5));
        Ia32.Asm.i (Dec (S32, R Ecx));
        Ia32.Asm.jcc Ne "loop";
        Ia32.Asm.i Hlt;
      ]
    ~data:[] ()

let run_smc ~cache =
  let image = smc_image () in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load ~writable_code:true image mem in
  Ia32.Icache.set_enabled st.Ia32.State.icache cache;
  match Ia32.Interp.run ~fuel:1_000 st with
  | Ia32.Interp.Stop_fault Ia32.Fault.Privileged, steps ->
    (Ia32.State.get32 st Ia32.Insn.Edi, steps)
  | _ -> Alcotest.fail "expected to stop at hlt"

let test_smc_invalidates_icache () =
  let edi_cached, steps_cached = run_smc ~cache:true in
  let edi_plain, steps_plain = run_smc ~cache:false in
  checki "patched immediate visible through decode cache" 6 edi_cached;
  checki "cache on/off agree" edi_plain edi_cached;
  checki "same step count" steps_plain steps_cached

(* ---------------- allocation budgets ---------------- *)

(* Minor words per executed machine slot under the pre-decoded core. The
   irreducible cost is Int64 boxing in the semantic actions; the budget
   has headroom for that but catches any reintroduced per-step tuple,
   option, closure or hashtable traffic (which adds several words per
   slot on top). *)
let test_machine_alloc_budget () =
  (* warm up: translations, lowering and caches allocate freely *)
  ignore (B.run_el ~config:(cfg ~pre:true ~dc:true) Workloads.Spec_int.gzip ~scale:1);
  let slots_of r =
    match r.B.engine with
    | Some e -> e.E.machine.Ipf.Machine.stats.Ipf.Machine.slots_retired
    | None -> 0
  in
  let before = Gc.minor_words () in
  let r = B.run_el ~config:(cfg ~pre:true ~dc:true) Workloads.Spec_int.gzip ~scale:1 in
  let words = Gc.minor_words () -. before in
  let slots = slots_of r in
  let per_slot = words /. float_of_int (max 1 slots) in
  Printf.eprintf "[alloc] machine: %.2f minor words/slot (%d slots)\n%!" per_slot
    slots;
  if per_slot > 10.0 then
    Alcotest.failf
      "machine inner loop allocates %.1f minor words per retired slot \
       (budget 10, measured ~4.3 at commit time); a per-step \
       tuple/closure/option crept back in"
      per_slot

(* Minor words per interpreted instruction with the decode cache on. A
   cached step must not re-decode (decoding allocates the insn) — the
   budget is far below one decoded instruction's footprint. *)
let test_interp_alloc_budget () =
  let image =
    Workloads.Spec_int.gzip.Workloads.Common.build ~scale:1 ~wide:false
  in
  let run () =
    let mem = Ia32.Memory.create () in
    let st = Ia32.Asm.load image mem in
    let vos = Btlib.Vos.create mem in
    let _, insns =
      Ia32el.Refvehicle.run ~btlib:(module Btlib.Linuxsim) vos st
    in
    insns
  in
  ignore (run ());
  let before = Gc.minor_words () in
  let insns = run () in
  let words = Gc.minor_words () -. before in
  let per_insn = words /. float_of_int (max 1 insns) in
  Printf.eprintf "[alloc] interp: %.2f minor words/insn (%d insns)\n%!" per_insn
    insns;
  if per_insn > 4.0 then
    Alcotest.failf
      "interpreter inner loop allocates %.1f minor words per instruction \
       (budget 4, measured ~0.1 at commit time); the decode-cache hit path \
       is allocating"
      per_insn

(* ---------------- pre-decode cache mechanics ---------------- *)

(* The lowering cache re-lowers only what the tcache actually changed:
   run a workload, then re-run on the same engine state — the second run
   must not grow the cached-bundle population (stamps all valid). *)
let test_exec_cache_stable () =
  let w = Workloads.Spec_int.gzip in
  let image = w.Workloads.Common.build ~scale:1 ~wide:false in
  let mem = Ia32.Memory.create () in
  let st = Ia32.Asm.load image mem in
  let eng = E.create ~btlib:(module Btlib.Linuxsim) mem in
  (match E.run ~fuel:10_000_000 eng st with
  | E.Exited _ -> ()
  | _ -> Alcotest.fail "gzip should exit");
  let cached = Ipf.Exec.cached_bundles eng.E.exec in
  check Alcotest.bool "some bundles pre-decoded" true (cached > 0);
  check Alcotest.bool "cache bounded by tcache length" true
    (cached <= Ipf.Tcache.length eng.E.tcache)

let () =
  Alcotest.run "exec"
    [
      ( "determinism",
        [
          Alcotest.test_case "workloads-4-switch-settings" `Quick
            test_workload_determinism;
          Alcotest.test_case "repeat-run-metrics" `Quick
            test_repeat_determinism;
          Alcotest.test_case "fuzz-corpus-4-switch-settings" `Slow
            test_fuzz_determinism;
        ] );
      ( "decode-cache",
        [
          Alcotest.test_case "smc-invalidates" `Quick
            test_smc_invalidates_icache;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "machine-budget" `Quick test_machine_alloc_budget;
          Alcotest.test_case "interp-budget" `Quick test_interp_alloc_budget;
        ] );
      ( "predecode",
        [
          Alcotest.test_case "cache-stable" `Quick test_exec_cache_stable;
        ] );
    ]
