(* Serving-layer tests (DESIGN.md §16):

   - the serve-echo guest end-to-end over the Vos request/response
     channel (response correctness, no-request / short-recv exits);
   - per-instance isolation: memories evolve generation streams
     independently, arenas don't leak across Vos instances;
   - standalone vs served determinism: a guest run alone and the same
     guest run inside a multi-worker batch yield bit-identical
     observables (metrics JSON, exit code, output, response) across the
     predecode × decode-cache config matrix;
   - admission control (bounded-queue rejection) and per-request budget
     exhaustion;
   - shared read-only AOT tcache: a warm batch retranslates nothing. *)

let payload = "GET /index.html HTTP/1.0\r\nHost: ia32el\r\n\r\n"

let run_echo ?(config = Ia32el.Config.default) ?request ?max_cycles ~scale () =
  let image = Workloads.Serve_echo.workload.Workloads.Common.build ~scale ~wide:false in
  let inst = Ia32el.Instance.create ~config image in
  Ia32el.Instance.run ?request ?max_cycles inst

(* ---- serve-echo guest ------------------------------------------------ *)

let test_echo_response () =
  let r = run_echo ~request:payload ~scale:1 () in
  (match r.Ia32el.Instance.stop with
  | Ia32el.Instance.Exited 0 -> ()
  | s -> Alcotest.failf "stop: %s" (Ia32el.Instance.stop_to_string s));
  Alcotest.(check string)
    "response = xor+checksum model"
    (Workloads.Serve_echo.expected_response payload)
    r.Ia32el.Instance.response

let test_echo_empty_payload () =
  let r = run_echo ~request:"" ~scale:1 () in
  (match r.Ia32el.Instance.stop with
  | Ia32el.Instance.Exited 0 -> ()
  | s -> Alcotest.failf "stop: %s" (Ia32el.Instance.stop_to_string s));
  Alcotest.(check string)
    "empty request -> bare checksum"
    (Workloads.Serve_echo.expected_response "")
    r.Ia32el.Instance.response

let test_echo_no_request () =
  (* no bind_request: accept fails with EAGAIN, guest exits 2 *)
  let r = run_echo ~scale:1 () in
  match r.Ia32el.Instance.stop with
  | Ia32el.Instance.Exited 2 -> ()
  | s -> Alcotest.failf "stop: %s" (Ia32el.Instance.stop_to_string s)

let test_echo_truncates () =
  let big = String.make (Workloads.Serve_echo.buf_cap + 500) 'x' in
  let r = run_echo ~request:big ~scale:1 () in
  (match r.Ia32el.Instance.stop with
  | Ia32el.Instance.Exited 0 -> ()
  | s -> Alcotest.failf "stop: %s" (Ia32el.Instance.stop_to_string s));
  Alcotest.(check string)
    "guest truncates to buf_cap"
    (Workloads.Serve_echo.expected_response big)
    r.Ia32el.Instance.response

(* ---- per-instance isolation ----------------------------------------- *)

let test_memory_generations_independent () =
  let m1 = Ia32.Memory.create () and m2 = Ia32.Memory.create () in
  Ia32.Memory.map m1 ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
  Ia32.Memory.map m2 ~addr:0x1000 ~len:0x1000 ~prot:Ia32.Memory.prot_rw;
  let g2_before = Ia32.Memory.page_gen m2 0x1000 in
  for i = 0 to 99 do
    Ia32.Memory.write8 m1 (0x1000 + i) (i land 0xFF)
  done;
  Alcotest.(check int)
    "m2 generation untouched by 100 writes to m1" g2_before
    (Ia32.Memory.page_gen m2 0x1000);
  Ia32.Memory.write8 m2 0x1000 1;
  Alcotest.(check bool)
    "m2 bumps by exactly one step"
    true
    (Ia32.Memory.page_gen m2 0x1000 = g2_before + 1)

let test_arena_per_instance () =
  let mk () = Btlib.Vos.create (Ia32.Memory.create ()) in
  let v1 = mk () and v2 = mk () in
  let a1 = Btlib.Linuxsim.alloc_region v1 ~len:100 in
  let a1' = Btlib.Linuxsim.alloc_region v1 ~len:100 in
  let a2 = Btlib.Linuxsim.alloc_region v2 ~len:100 in
  Alcotest.(check bool) "second alloc advances" true (a1' > a1);
  Alcotest.(check int) "fresh instance restarts at the base" a1 a2;
  let w1 = mk () and w2 = mk () in
  let b1 = Btlib.Winsim.alloc_region w1 ~len:1 in
  ignore (Btlib.Winsim.alloc_region w1 ~len:1);
  let b2 = Btlib.Winsim.alloc_region w2 ~len:1 in
  Alcotest.(check int) "winsim arena is per-instance too" b1 b2

(* ---- standalone vs served determinism -------------------------------- *)

let config_matrix =
  [
    ("pre+dc", Ia32el.Config.default);
    ( "nopre",
      { Ia32el.Config.default with Ia32el.Config.enable_predecode = false } );
    ( "nodc",
      { Ia32el.Config.default with Ia32el.Config.enable_decode_cache = false }
    );
    ( "neither",
      {
        Ia32el.Config.default with
        Ia32el.Config.enable_predecode = false;
        enable_decode_cache = false;
      } );
  ]

let observables ?config ~request () =
  let image = Workloads.Serve_echo.workload.Workloads.Common.build ~scale:1 ~wide:false in
  let inst = Ia32el.Instance.create ?config image in
  let r = Ia32el.Instance.run ~request inst in
  let m = Obs.Metrics.to_string (Ia32el.Instance.metrics inst) in
  (r.Ia32el.Instance.stop, r.Ia32el.Instance.output, r.Ia32el.Instance.response, m)

let test_standalone_vs_served_inline () =
  List.iter
    (fun (cname, config) ->
      let stop0, out0, resp0, m0 = observables ~config ~request:payload () in
      (* a 6-request batch on the inline backend, 3 distinct payloads *)
      let reqs = [ payload; ""; payload; "abc"; payload; "abc" ] in
      let jobs =
        List.map (fun p -> { Serve.payload = p; max_cycles = None }) reqs
      in
      let batch =
        Serve.run_batch
          (Serve.pool ~backend:Serve.Inline ~workers:1 ~queue:10
             ~config ())
          jobs
      in
      List.iteri
        (fun i (req, res) ->
          if req = payload then begin
            let r = Option.get res.Serve.result in
            Alcotest.(check string)
              (Printf.sprintf "%s: served output %d = standalone" cname i)
              out0 r.Serve.r_output;
            Alcotest.(check string)
              (Printf.sprintf "%s: served response %d = standalone" cname i)
              resp0 r.Serve.r_response;
            Alcotest.(check string)
              (Printf.sprintf "%s: served metrics %d bit-identical" cname i)
              m0 r.Serve.r_metrics;
            Alcotest.(check string)
              (Printf.sprintf "%s: served stop %d = standalone" cname i)
              (Ia32el.Instance.stop_to_string stop0)
              r.Serve.r_stop
          end)
        (List.combine reqs batch.Serve.responses))
    config_matrix

let test_standalone_vs_served_forked () =
  (* the real thing: 4 forked workers, every response must match the
     standalone run bit-for-bit — metrics JSON included *)
  let config = Ia32el.Config.default in
  let _, out0, resp0, m0 = observables ~config ~request:payload () in
  let jobs =
    List.init 8 (fun _ -> { Serve.payload; max_cycles = None })
  in
  let batch =
    Serve.run_batch
      (Serve.pool ~backend:Serve.Forked ~workers:4 ~queue:8 ~config ())
      jobs
  in
  Alcotest.(check int) "all 8 served" 8
    (List.length
       (List.filter (fun r -> r.Serve.result <> None) batch.Serve.responses));
  List.iteri
    (fun i res ->
      let r = Option.get res.Serve.result in
      Alcotest.(check string)
        (Printf.sprintf "fork: output %d" i)
        out0 r.Serve.r_output;
      Alcotest.(check string)
        (Printf.sprintf "fork: response %d" i)
        resp0 r.Serve.r_response;
      Alcotest.(check string)
        (Printf.sprintf "fork: metrics %d bit-identical" i)
        m0 r.Serve.r_metrics)
    batch.Serve.responses;
  Alcotest.(check bool) "workers actually forked" true
    (List.length (List.sort_uniq compare
       (List.filter_map (fun r -> Option.map (fun x -> x.Serve.r_worker) r.Serve.result)
          batch.Serve.responses)) > 1)

let test_standalone_vs_served_domains () =
  (* stretch backend: OCaml 5 domains, same bit-identical contract *)
  let config = Ia32el.Config.default in
  let _, out0, resp0, m0 = observables ~config ~request:payload () in
  let jobs = List.init 4 (fun _ -> { Serve.payload; max_cycles = None }) in
  let batch =
    Serve.run_batch
      (Serve.pool ~backend:Serve.Domains ~workers:2 ~queue:4 ~config ())
      jobs
  in
  List.iteri
    (fun i res ->
      let r = Option.get res.Serve.result in
      Alcotest.(check string)
        (Printf.sprintf "domains: output %d" i)
        out0 r.Serve.r_output;
      Alcotest.(check string)
        (Printf.sprintf "domains: response %d" i)
        resp0 r.Serve.r_response;
      Alcotest.(check string)
        (Printf.sprintf "domains: metrics %d bit-identical" i)
        m0 r.Serve.r_metrics)
    batch.Serve.responses

(* ---- admission control and budgets ----------------------------------- *)

let test_admission_rejection () =
  (* capacity = workers + queue = 2; the third concurrent submission must
     be rejected with a structured serve error *)
  let p = Serve.pool ~backend:Serve.Inline ~workers:1 ~queue:1 () in
  let jobs = List.init 3 (fun _ -> { Serve.payload; max_cycles = None }) in
  let batch = Serve.run_batch ~drain_between:false p jobs in
  let rejected =
    List.filter (fun r -> r.Serve.rejected <> None) batch.Serve.responses
  in
  Alcotest.(check int) "exactly one rejection" 1 (List.length rejected);
  (match rejected with
  | [ { Serve.rejected = Some e; _ } ] ->
    Alcotest.(check string) "component" "serve" e.Ia32el.Bt_error.component
  | _ -> Alcotest.fail "expected a structured rejection");
  Alcotest.(check int) "the other two were served" 2
    (List.length
       (List.filter (fun r -> r.Serve.result <> None) batch.Serve.responses))

let test_budget_exhaustion () =
  let r = run_echo ~request:payload ~max_cycles:2_000 ~scale:50 () in
  (match r.Ia32el.Instance.stop with
  | Ia32el.Instance.Budget_exhausted e ->
    Alcotest.(check string) "watchdog component" "watchdog"
      e.Ia32el.Bt_error.component
  | s -> Alcotest.failf "expected budget exhaustion, got %s"
           (Ia32el.Instance.stop_to_string s));
  (* and through the pool: the response reports the blown budget *)
  let p = Serve.pool ~backend:Serve.Inline ~workers:1 ~queue:4 ~scale:50 () in
  let batch =
    Serve.run_batch p [ { Serve.payload; max_cycles = Some 2_000 } ]
  in
  match batch.Serve.responses with
  | [ { Serve.result = Some r; _ } ] ->
    Alcotest.(check string) "pool reports budget_exhausted"
      "budget_exhausted" r.Serve.r_stop
  | _ -> Alcotest.fail "expected one served response"

(* ---- shared read-only AOT tcache ------------------------------------- *)

let test_warm_batch_no_retranslation () =
  let dir = Filename.temp_file "ia32el_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let tc = Filename.concat dir "serve.tc" in
  Alcotest.(check int) "tcache saved clean" 0
    (List.length (Serve.compile_tcache ~path:tc ~scale:1 ~payload ()));
  let p =
    Serve.pool ~backend:Serve.Inline ~workers:2 ~queue:8 ~tcache:tc
      ~tcache_readonly:true ()
  in
  let jobs = List.init 6 (fun _ -> { Serve.payload; max_cycles = None }) in
  let batch = Serve.run_batch p jobs in
  List.iter
    (fun res ->
      match res.Serve.result with
      | Some r ->
        Alcotest.(check int)
          "zero cache misses: no warm code retranslated" 0 r.Serve.r_tc_misses;
        Alcotest.(check bool) "every translation served from AOT store" true
          (r.Serve.r_tc_hits > 0)
      | None -> Alcotest.fail "request rejected unexpectedly")
    batch.Serve.responses;
  Sys.remove tc;
  Unix.rmdir dir

(* ---- roll-up metrics -------------------------------------------------- *)

let test_rollup_schema () =
  let p = Serve.pool ~backend:Serve.Inline ~workers:2 ~queue:8 () in
  let jobs = List.init 3 (fun _ -> { Serve.payload; max_cycles = None }) in
  let batch = Serve.run_batch p jobs in
  let j = Serve.rollup batch in
  (* the rendered JSON must round-trip through the metrics parser *)
  let m =
    match Obs.Metrics.parse (Obs.Metrics.to_string j) with
    | Ok v -> v
    | Error e -> Alcotest.failf "rollup JSON does not parse: %s" e
  in
  (match Obs.Metrics.member "schema" m with
  | Some (Obs.Metrics.Str s) ->
    Alcotest.(check string) "schema" "ia32el-serve/1" s
  | _ -> Alcotest.fail "schema field missing");
  match Obs.Metrics.member "requests" m with
  | Some req ->
    (match Obs.Metrics.member "served" req with
    | Some (Obs.Metrics.Int n) -> Alcotest.(check int) "served" 3 n
    | _ -> Alcotest.fail "requests.served missing")
  | None -> Alcotest.fail "requests section missing"

let () =
  Alcotest.run "serve"
    [
      ( "echo-guest",
        [
          Alcotest.test_case "response model" `Quick test_echo_response;
          Alcotest.test_case "empty payload" `Quick test_echo_empty_payload;
          Alcotest.test_case "no request bound" `Quick test_echo_no_request;
          Alcotest.test_case "oversize truncates" `Quick test_echo_truncates;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "memory generations independent" `Quick
            test_memory_generations_independent;
          Alcotest.test_case "arena per instance" `Quick test_arena_per_instance;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "standalone = served (config matrix)" `Quick
            test_standalone_vs_served_inline;
          Alcotest.test_case "standalone = served (4 forked workers)" `Quick
            test_standalone_vs_served_forked;
          Alcotest.test_case "standalone = served (2 domains)" `Quick
            test_standalone_vs_served_domains;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounded queue rejects" `Quick
            test_admission_rejection;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
        ] );
      ( "aot",
        [
          Alcotest.test_case "warm batch: zero retranslation" `Quick
            test_warm_batch_no_retranslation;
        ] );
      ( "rollup",
        [ Alcotest.test_case "schema ia32el-serve/1" `Quick test_rollup_schema ] );
    ]
