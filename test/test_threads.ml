(* Guest-multithreading tests: deterministic schedule replay, cross-thread
   SMC shootdown, eviction storms under load, the thread syscalls' error
   paths, and deadlock detection.

   The scheduler contract under test (DESIGN.md §11): thread switches
   happen only at syscall commit points, driven by the engine's virtual
   clock — so every simulated observable (cycles, metrics, lockstep
   commit stream) is bit-reproducible across repeated runs and across the
   host-speed switches. *)

open Ia32.Insn
module A = Ia32.Asm
module B = Workloads.Baselines
module E = Ia32el.Engine
module J = Obs.Metrics
module L = Btlib.Linuxsim

let check = Alcotest.check
let checki = check Alcotest.int
let checks = check Alcotest.string

let cfg ~pre ~dc =
  {
    Ia32el.Config.default with
    Ia32el.Config.enable_predecode = pre;
    Ia32el.Config.enable_decode_cache = dc;
  }

let observables config w =
  let r = B.run_el ~config w ~scale:1 in
  let metrics =
    match r.B.engine with
    | Some e -> J.json_to_string (J.to_json (E.metrics e))
    | None -> "none"
  in
  (r.B.cycles, metrics)

(* ---------------- deterministic schedule replay ---------------- *)

let test_schedule_replay () =
  List.iter
    (fun w ->
      let name = w.Workloads.Common.name in
      let base_cycles, base_metrics = observables (cfg ~pre:true ~dc:true) w in
      (* repeat run: bit-identical *)
      let again_cycles, again_metrics =
        observables (cfg ~pre:true ~dc:true) w
      in
      checki (name ^ " repeat cycles") base_cycles again_cycles;
      checks (name ^ " repeat metrics") base_metrics again_metrics;
      (* host-speed switch matrix: bit-identical *)
      List.iter
        (fun (pre, dc) ->
          let c, m = observables (cfg ~pre ~dc) w in
          let tag = Printf.sprintf "%s pre=%b dc=%b" name pre dc in
          checki (tag ^ " cycles") base_cycles c;
          checks (tag ^ " metrics") base_metrics m)
        [ (true, false); (false, true); (false, false) ])
    (Workloads.Threads.all ~workers:3)

(* A different quantum gives a different (but still deterministic)
   schedule: same guest result, reproducible cycle count. *)
let test_quantum_determinism () =
  let w = Workloads.Threads.producer_consumer ~workers:3 in
  let run q =
    let config = { Ia32el.Config.default with Ia32el.Config.quantum = q } in
    (observables config w, observables config w)
  in
  List.iter
    (fun q ->
      let (c1, m1), (c2, m2) = run q in
      checki (Printf.sprintf "quantum %d cycles reproducible" q) c1 c2;
      checks (Printf.sprintf "quantum %d metrics reproducible" q) m1 m2)
    [ 0; 700; 5_000 ]

(* Both multithreaded workloads agree with the reference interpreter at
   every commit point. *)
let test_lockstep_clean () =
  List.iter
    (fun w ->
      let r = Harness.Resilience.run_lockstep w ~scale:1 in
      match r.Harness.Resilience.report.Ia32el.Lockstep.divergence with
      | Some d ->
        Alcotest.failf "%s diverged: %s" w.Workloads.Common.name
          (Fmt.str "%a" Ia32el.Lockstep.pp_divergence d)
      | None -> (
        match r.Harness.Resilience.report.Ia32el.Lockstep.outcome with
        | Some (E.Exited (0, _)) -> ()
        | _ -> Alcotest.failf "%s did not exit 0" w.Workloads.Common.name))
    (Workloads.Threads.all ~workers:3)

(* ---------------- cross-thread SMC shootdown ---------------- *)

(* The main thread patches the imm32 of an instruction inside a block the
   worker thread is executing in a yield loop: the worker's pre-decoded
   block and any decode-cache entry must be shot down so it observes the
   patched value. If the shootdown misses, the worker spins forever and
   the run ends Out_of_fuel. *)
let smc_image () =
  let stack = A.default_data_base + 0x1000 in
  let code =
    [
      A.label "start";
      A.mov_ri_lab Ebx "worker";
      A.i (Mov (S32, R Ecx, I stack));
      A.i (Mov (S32, R Edx, I 0));
      A.i (Mov (S32, R Eax, I 120));
      A.i (Int_n 0x80);
      A.i (Mov (S32, R Esi, R Eax));
      (* let the worker run its loop once with the original imm *)
      A.i (Mov (S32, R Eax, I 159));
      A.i (Int_n 0x80);
      A.i (Mov (S32, R Eax, I 159));
      A.i (Int_n 0x80);
      (* thread A's SMC write into thread B's live block *)
      A.with_lab "wpatch" (fun a -> Mov (S32, M (mem_abs (a + 1)), I 2222));
      A.i (Mov (S32, R Ebx, R Esi));
      A.i (Mov (S32, R Eax, I 7));
      A.i (Int_n 0x80);
      A.i (Alu (Cmp, S32, R Eax, I 42));
      A.jcc Ne "fail";
      A.i (Mov (S32, R Eax, I 1));
      A.i (Mov (S32, R Ebx, I 0));
      A.i (Int_n 0x80);
      A.label "fail";
      A.i (Mov (S32, R Eax, I 1));
      A.i (Mov (S32, R Ebx, I 1));
      A.i (Int_n 0x80);
      A.label "worker";
      A.label "wloop";
      A.label "wpatch";
      A.i (Mov (S32, R Eax, I 1111));
      A.i (Alu (Cmp, S32, R Eax, I 2222));
      A.jcc E "wdone";
      A.i (Mov (S32, R Eax, I 159));
      A.i (Int_n 0x80);
      A.jmp "wloop";
      A.label "wdone";
      A.i (Mov (S32, R Eax, I 1));
      A.i (Mov (S32, R Ebx, I 42));
      A.i (Int_n 0x80);
    ]
  in
  A.build ~code ~data:[ A.space 0x4000 ] ()

let run_smc config =
  let image = smc_image () in
  let mem = Ia32.Memory.create () in
  let st0 = A.load ~writable_code:true image mem in
  let engine = ref None in
  let report =
    Ia32el.Lockstep.run ~config ~fuel:2_000_000
      ~attach:(fun e -> engine := Some e)
      ~btlib:(module L)
      mem st0
  in
  (report, Option.get !engine)

let test_cross_thread_smc () =
  let base = ref None in
  List.iter
    (fun (pre, dc) ->
      let report, eng = run_smc (cfg ~pre ~dc) in
      let tag = Printf.sprintf "pre=%b dc=%b" pre dc in
      (match report.Ia32el.Lockstep.divergence with
      | Some d ->
        Alcotest.failf "smc %s diverged: %s" tag
          (Fmt.str "%a" Ia32el.Lockstep.pp_divergence d)
      | None -> ());
      (match report.Ia32el.Lockstep.outcome with
      | Some (E.Exited (0, _)) -> ()
      | Some (E.Exited (c, _)) ->
        Alcotest.failf "smc %s: guest exit %d (join code wrong)" tag c
      | _ -> Alcotest.failf "smc %s: worker never saw the patch" tag);
      let smc =
        match List.assoc_opt "smc_invalidations" (J.counters (E.metrics eng))
        with
        | Some n -> n
        | None -> 0
      in
      check Alcotest.bool (tag ^ " smc invalidations seen") true (smc > 0);
      let cycles = (E.distribution eng).Ia32el.Account.total in
      match !base with
      | None -> base := Some cycles
      | Some b -> checki (tag ^ " cycles identical") b cycles)
    [ (true, true); (true, false); (false, true); (false, false) ]

(* ---------------- eviction storm under 4 threads ---------------- *)

let test_eviction_storm_threads () =
  let w = Workloads.Threads.producer_consumer ~workers:3 in
  let inject =
    Harness.Inject.create ~rate_tos:0 ~rate_sse:0 ~rate_smc:0 ~rate_flush:0
      ~rate_squeeze:11 ~rate_transient:0 ~seed:5 ()
  in
  let r =
    Harness.Resilience.run_lockstep
      ~attach_extra:(fun e -> Harness.Inject.attach inject e)
      w ~scale:1
  in
  (match r.Harness.Resilience.report.Ia32el.Lockstep.divergence with
  | Some d ->
    Alcotest.failf "storm diverged: %s"
      (Fmt.str "%a" Ia32el.Lockstep.pp_divergence d)
  | None -> ());
  (match r.Harness.Resilience.report.Ia32el.Lockstep.outcome with
  | Some (E.Exited (0, _)) -> ()
  | _ -> Alcotest.fail "storm run did not exit 0");
  let s = Harness.Inject.stats inject in
  check Alcotest.bool "squeezes actually fired" true
    (s.Harness.Inject.capacity_squeezes > 0)

(* ---------------- join error paths ---------------- *)

let errno n = Ia32.Word.mask32 n

let syscall vos st ~eax ~ebx =
  Ia32.State.set32 st Eax eax;
  Ia32.State.set32 st Ebx ebx;
  L.perform vos st (L.decode_syscall st)

let test_join_error_paths () =
  let mem = Ia32.Memory.create () in
  let st = Ia32.State.create mem in
  let vos = Btlib.Vos.create mem in
  let ret = Alcotest.testable Btlib.Syscall.pp_result ( = ) in
  (* self-join: EDEADLK *)
  check ret "self-join" (Btlib.Syscall.Ret (errno (-35)))
    (syscall vos st ~eax:7 ~ebx:0);
  (* unknown tid: ESRCH *)
  check ret "join unknown" (Btlib.Syscall.Ret (errno (-3)))
    (syscall vos st ~eax:7 ~ebx:9);
  (* spawn a worker and let it exit with code 9 *)
  Ia32.State.set32 st Ecx 0x500000;
  Ia32.State.set32 st Edx 0;
  check ret "spawn" (Btlib.Syscall.Ret 1)
    (syscall vos st ~eax:120 ~ebx:0x401000);
  let th1 =
    match Btlib.Vos.find_thread vos 1 with
    | Some th -> th
    | None -> Alcotest.fail "spawned thread not in table"
  in
  Btlib.Vos.set_current vos 1;
  (match syscall vos th1.Btlib.Vos.state ~eax:1 ~ebx:9 with
  | Btlib.Syscall.Block -> ()
  | r ->
    Alcotest.failf "worker exit with main alive should Block, got %a"
      Btlib.Syscall.pp_result r);
  Btlib.Vos.set_current vos 0;
  (* join-on-exited: immediate result, no blocking *)
  check ret "join exited" (Btlib.Syscall.Ret 9) (syscall vos st ~eax:7 ~ebx:1);
  (* second join on the reaped thread: ESRCH *)
  check ret "join reaped" (Btlib.Syscall.Ret (errno (-3)))
    (syscall vos st ~eax:7 ~ebx:1);
  (* two joiners on one target: the second gets EINVAL *)
  check ret "spawn t2" (Btlib.Syscall.Ret 2)
    (syscall vos st ~eax:120 ~ebx:0x401000);
  check ret "spawn t3" (Btlib.Syscall.Ret 3)
    (syscall vos st ~eax:120 ~ebx:0x401000);
  let th2 =
    match Btlib.Vos.find_thread vos 2 with
    | Some th -> th
    | None -> Alcotest.fail "t2 not in table"
  in
  Btlib.Vos.set_current vos 2;
  (match syscall vos th2.Btlib.Vos.state ~eax:7 ~ebx:3 with
  | Btlib.Syscall.Block -> ()
  | r -> Alcotest.failf "first joiner should Block, got %a"
           Btlib.Syscall.pp_result r);
  Btlib.Vos.set_current vos 0;
  check ret "double join" (Btlib.Syscall.Ret (errno (-22)))
    (syscall vos st ~eax:7 ~ebx:3)

(* ---------------- deadlock detection ---------------- *)

(* The sole thread futex-waits on a value that matches: every thread is
   blocked, which the engine reports as a structured Bt_error rather than
   spinning. *)
let test_deadlock_bt_error () =
  let code =
    [
      A.label "start";
      A.i (Mov (S32, R Eax, I 240));
      A.i (Mov (S32, R Ebx, I A.default_data_base));
      A.i (Mov (S32, R Ecx, I 0));
      A.i (Mov (S32, R Edx, I 0));
      A.i (Int_n 0x80);
    ]
  in
  let image = A.build ~code ~data:[ A.space 0x100 ] () in
  let mem = Ia32.Memory.create () in
  let st0 = A.load image mem in
  let eng = E.create ~btlib:(module L) mem in
  match E.run ~fuel:1_000_000 eng st0 with
  | exception Ia32el.Bt_error.Error e ->
    checks "deadlock component" "engine" e.Ia32el.Bt_error.component;
    check Alcotest.bool "deadlock message" true
      (String.length e.Ia32el.Bt_error.what >= 8
      && String.sub e.Ia32el.Bt_error.what 0 8 = "deadlock")
  | _ -> Alcotest.fail "all-blocked guest should raise Bt_error"

let () =
  Alcotest.run "threads"
    [
      ( "determinism",
        [
          Alcotest.test_case "schedule-replay" `Quick test_schedule_replay;
          Alcotest.test_case "quantum-sweep" `Quick test_quantum_determinism;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "workloads-clean" `Quick test_lockstep_clean;
          Alcotest.test_case "eviction-storm-4-threads" `Quick
            test_eviction_storm_threads;
        ] );
      ( "smc",
        [
          Alcotest.test_case "cross-thread-shootdown" `Quick
            test_cross_thread_smc;
        ] );
      ( "errors",
        [
          Alcotest.test_case "join-error-paths" `Quick test_join_error_paths;
          Alcotest.test_case "deadlock-bt-error" `Quick
            test_deadlock_bt_error;
        ] );
    ]
