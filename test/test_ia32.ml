(* Tests for the IA-32 substrate: word arithmetic, memory, FPU stack,
   encoder/decoder round-trip (unit vectors + qcheck property), interpreter
   semantics, and the assembler DSL. *)

open Ia32

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------------------------------------------------------- *)
(* Word                                                              *)
(* ---------------------------------------------------------------- *)

let word_tests =
  [
    Alcotest.test_case "mask32 wraps" `Quick (fun () ->
        check int "wrap" 0 (Word.mask32 0x100000000);
        check int "neg" 0xFFFFFFFF (Word.mask32 (-1)));
    Alcotest.test_case "signed8" `Quick (fun () ->
        check int "0xFF" (-1) (Word.signed8 0xFF);
        check int "0x7F" 127 (Word.signed8 0x7F);
        check int "0x80" (-128) (Word.signed8 0x80));
    Alcotest.test_case "signed32" `Quick (fun () ->
        check int "max" 0x7FFFFFFF (Word.signed32 0x7FFFFFFF);
        check int "min" (-0x80000000) (Word.signed32 0x80000000));
    Alcotest.test_case "parity" `Quick (fun () ->
        check bool "0" true (Word.parity 0);
        check bool "1" false (Word.parity 1);
        check bool "3" true (Word.parity 3);
        check bool "7" false (Word.parity 7);
        check bool "only low byte" true (Word.parity 0x100));
    Alcotest.test_case "sign_bit" `Quick (fun () ->
        check bool "byte" true (Word.sign_bit 1 0x80);
        check bool "word" false (Word.sign_bit 2 0x7FFF);
        check bool "dword" true (Word.sign_bit 4 0x80000000));
    Alcotest.test_case "i64 split/join" `Quick (fun () ->
        let v = 0x123456789ABCDEF0L in
        check int "lo" 0x9ABCDEF0 (Word.lo32 v);
        check int "hi" 0x12345678 (Word.hi32 v);
        Alcotest.check Alcotest.int64 "join" v
          (Word.to_i64 ~lo:0x9ABCDEF0 ~hi:0x12345678));
  ]

(* ---------------------------------------------------------------- *)
(* Memory                                                            *)
(* ---------------------------------------------------------------- *)

let mem_tests =
  let open Memory in
  [
    Alcotest.test_case "read/write round trip" `Quick (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x2000 ~prot:prot_rw;
        write32 m 0x1000 0xDEADBEEF;
        check int "read32" 0xDEADBEEF (read32 m 0x1000);
        check int "read8" 0xEF (read8 m 0x1000);
        check int "read16" 0xBEEF (read16 m 0x1000);
        check int "read16 hi" 0xDEAD (read16 m 0x1002));
    Alcotest.test_case "little endian" `Quick (fun () ->
        let m = create () in
        map m ~addr:0 ~len:0x1000 ~prot:prot_rw;
        write32 m 0 0x04030201;
        check int "b0" 1 (read8 m 0);
        check int "b3" 4 (read8 m 3));
    Alcotest.test_case "page straddle" `Quick (fun () ->
        let m = create () in
        map m ~addr:0 ~len:0x2000 ~prot:prot_rw;
        write32 m 0xFFE 0x11223344;
        check int "straddle" 0x11223344 (read32 m 0xFFE));
    Alcotest.test_case "unmapped faults" `Quick (fun () ->
        let m = create () in
        Alcotest.check_raises "pf"
          (Fault.Fault (Fault.Page_fault (0x5000, Fault.Read)))
          (fun () -> ignore (read8 m 0x5000)));
    Alcotest.test_case "write to read-only faults" `Quick (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x1000 ~prot:prot_rx;
        Alcotest.check_raises "pf"
          (Fault.Fault (Fault.Page_fault (0x1000, Fault.Write)))
          (fun () -> write8 m 0x1000 1));
    Alcotest.test_case "exec permission" `Quick (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x1000 ~prot:prot_rw;
        Alcotest.check_raises "fetch fault"
          (Fault.Fault (Fault.Page_fault (0x1000, Fault.Fetch)))
          (fun () -> ignore (fetch8 m 0x1000)));
    Alcotest.test_case "write watch fires on watched page" `Quick (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x2000 ~prot:prot_rwx;
        let hits = ref [] in
        set_write_watch m (Some (fun a w -> hits := (a, w) :: !hits));
        watch_page m 0x1000;
        write32 m 0x1004 42;
        write32 m 0x2004 42;
        (* unwatched page *)
        check int "one hit" 1 (List.length !hits);
        check bool "addr" true (List.mem (0x1004, 4) !hits));
    Alcotest.test_case "load_bytes bypasses watch" `Quick (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x1000 ~prot:prot_rwx;
        let hits = ref 0 in
        set_write_watch m (Some (fun _ _ -> incr hits));
        watch_page m 0x1000;
        load_bytes m 0x1000 "abcd";
        check int "no hits" 0 !hits;
        check int "loaded" (Char.code 'a') (read8 m 0x1000));
    Alcotest.test_case "copy and diff" `Quick (fun () ->
        let m = create () in
        map m ~addr:0 ~len:0x1000 ~prot:prot_rw;
        write32 m 0x10 7;
        let m2 = copy m in
        check bool "equal" true (equal m m2);
        write8 m2 0x20 1;
        check bool "not equal" false (equal m m2);
        check (Alcotest.option int) "diff addr" (Some 0x20) (first_diff m m2));
  ]

(* ---------------------------------------------------------------- *)
(* FPU                                                               *)
(* ---------------------------------------------------------------- *)

(* ------------------------------------------------------------------ *)
(* Memory.Journal: nested copy-on-write epochs over page mutations      *)
(* ------------------------------------------------------------------ *)

let journal_tests =
  let open Memory in
  [
    Alcotest.test_case "revert restores bytes, prot and generation" `Quick
      (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x1000 ~prot:prot_rw;
        write32 m 0x1000 0xAAAA;
        let gen0 = page_gen m 0x1000 in
        Journal.push m;
        write32 m 0x1000 0xBBBB;
        protect m ~addr:0x1000 ~len:0x1000 ~prot:prot_rx;
        check bool "gen moved" true (page_gen m 0x1000 <> gen0);
        let touched = Journal.revert m in
        check int "one page touched" 1 (List.length touched);
        check int "bytes restored" 0xAAAA (read32 m 0x1000);
        check bool "prot restored" true (prot_of m 0x1000 = Some prot_rw);
        check int "generation restored" gen0 (page_gen m 0x1000));
    Alcotest.test_case "nested epochs: commit folds into parent" `Quick
      (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x1000 ~prot:prot_rw;
        write32 m 0x1000 1;
        Journal.push m;
        write32 m 0x1000 2;
        Journal.push m;
        write32 m 0x1000 3;
        Journal.commit m;
        (* inner changes survive the commit... *)
        check int "committed value" 3 (read32 m 0x1000);
        check int "one epoch left" 1 (Journal.depth m);
        (* ...but the outer epoch can still revert them, to the value
           before ITS pre-image (the parent's older pre-image wins) *)
        ignore (Journal.revert m);
        check int "outer revert" 1 (read32 m 0x1000));
    Alcotest.test_case "nested epochs: inner revert keeps outer intact"
      `Quick (fun () ->
        let m = create () in
        map m ~addr:0x1000 ~len:0x2000 ~prot:prot_rw;
        write32 m 0x1000 10;
        Journal.push m;
        write32 m 0x1000 20;
        Journal.push m;
        write32 m 0x1000 30;
        write32 m 0x2000 99;
        ignore (Journal.revert m);
        check int "inner reverted" 20 (read32 m 0x1000);
        check int "inner page reverted" 0 (read32 m 0x2000);
        ignore (Journal.revert m);
        check int "outer reverted" 10 (read32 m 0x1000));
    Alcotest.test_case "revert remaps an unmapped page" `Quick (fun () ->
        let m = create () in
        map m ~addr:0x3000 ~len:0x1000 ~prot:prot_rwx;
        write32 m 0x3000 0x1234;
        Journal.push m;
        unmap m ~addr:0x3000 ~len:0x1000;
        check bool "unmapped" false (is_mapped m 0x3000);
        ignore (Journal.revert m);
        check bool "remapped" true (is_mapped m 0x3000);
        check int "bytes back" 0x1234 (read32 m 0x3000);
        check bool "prot back" true (prot_of m 0x3000 = Some prot_rwx));
    Alcotest.test_case "revert unmaps a page mapped inside the epoch" `Quick
      (fun () ->
        let m = create () in
        Journal.push m;
        map m ~addr:0x4000 ~len:0x1000 ~prot:prot_rw;
        write32 m 0x4000 7;
        ignore (Journal.revert m);
        check bool "gone again" false (is_mapped m 0x4000));
    Alcotest.test_case "revert cost is O(pages touched)" `Quick (fun () ->
        (* map a large space, touch exactly K pages many times each: the
           restoration counter must advance by exactly K, independent of
           the 64 mapped pages and of the number of writes *)
        let m = create () in
        map m ~addr:0x10000 ~len:(64 * page_size) ~prot:prot_rw;
        let before = Journal.pages_restored m in
        Journal.push m;
        let k = 5 in
        for p = 0 to k - 1 do
          for i = 0 to 99 do
            write32 m (0x10000 + (p * page_size) + (4 * i)) (p + i)
          done
        done;
        check int "touched tracks distinct pages" k (Journal.touched m);
        let touched = Journal.revert m in
        check int "touched pages returned" k (List.length touched);
        check int "pages restored == pages touched" k
          (Journal.pages_restored m - before));
  ]

let fpu_tests =
  [
    Alcotest.test_case "push/pop moves top" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.push f 1.0;
        check int "top" 7 f.Fpu.top;
        Fpu.push f 2.0;
        check int "top2" 6 f.Fpu.top;
        Alcotest.check (Alcotest.float 0.0) "st0" 2.0 (Fpu.get f 0);
        Alcotest.check (Alcotest.float 0.0) "st1" 1.0 (Fpu.get f 1);
        Fpu.pop f;
        Alcotest.check (Alcotest.float 0.0) "st0 after pop" 1.0 (Fpu.get f 0));
    Alcotest.test_case "underflow faults" `Quick (fun () ->
        let f = Fpu.create () in
        Alcotest.check_raises "stack fault" (Fault.Fault Fault.Fp_stack_fault)
          (fun () -> ignore (Fpu.get f 0)));
    Alcotest.test_case "overflow faults" `Quick (fun () ->
        let f = Fpu.create () in
        for k = 1 to 8 do
          Fpu.push f (Float.of_int k)
        done;
        Alcotest.check_raises "stack fault" (Fault.Fault Fault.Fp_stack_fault)
          (fun () -> Fpu.push f 9.0));
    Alcotest.test_case "fxch swaps" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.push f 1.0;
        Fpu.push f 2.0;
        Fpu.fxch f 1;
        Alcotest.check (Alcotest.float 0.0) "st0" 1.0 (Fpu.get f 0);
        Alcotest.check (Alcotest.float 0.0) "st1" 2.0 (Fpu.get f 1));
    Alcotest.test_case "compare sets condition codes" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.push f 1.0;
        Fpu.compare_with f 2.0;
        check bool "c0 (lt)" true f.Fpu.c0;
        Fpu.compare_with f 1.0;
        check bool "c3 (eq)" true f.Fpu.c3;
        Fpu.compare_with f 0.5;
        check bool "gt" false (f.Fpu.c0 || f.Fpu.c3 || f.Fpu.c2));
    Alcotest.test_case "status word encodes top" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.push f 1.0;
        check int "top field" 7 ((Fpu.status_word f lsr 11) land 7));
    Alcotest.test_case "mmx aliasing resets top and tags" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.push f 1.0;
        Fpu.mmx_set f 3 42L;
        check int "top reset" 0 f.Fpu.top;
        check bool "all valid" true (Array.for_all (( = ) Fpu.Valid) f.Fpu.tags);
        Alcotest.check Alcotest.int64 "mm3" 42L (Fpu.mmx_get f 3));
    Alcotest.test_case "emms empties" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.mmx_set f 0 1L;
        Fpu.emms f;
        check bool "all empty" true (Array.for_all (( = ) Fpu.Empty) f.Fpu.tags));
    Alcotest.test_case "fp write refreshes mmx image" `Quick (fun () ->
        let f = Fpu.create () in
        Fpu.push f 3.5;
        let p = Fpu.phys f 0 in
        Alcotest.check Alcotest.int64 "bits" (Int64.bits_of_float 3.5)
          f.Fpu.ival.(p));
    Alcotest.test_case "tag word" `Quick (fun () ->
        let f = Fpu.create () in
        check int "all empty" 0xFFFF (Fpu.tag_word f);
        Fpu.push f 1.0;
        check int "slot7 valid" 0x3FFF (Fpu.tag_word f));
  ]

(* ---------------------------------------------------------------- *)
(* Encoder/decoder: unit vectors                                     *)
(* ---------------------------------------------------------------- *)

let insn_testable =
  Alcotest.testable Insn.pp (fun a b -> a = b)

let hex s =
  String.concat " " (List.init (String.length s) (fun k ->
      Printf.sprintf "%02x" (Char.code s.[k])))

let roundtrip ?(ip = 0x401000) insn =
  let bytes = Encode.encode ~ip insn in
  let mem = Memory.create () in
  Memory.map mem ~addr:(ip land lnot 0xFFF) ~len:0x2000 ~prot:Memory.prot_rwx;
  Memory.load_bytes mem ip bytes;
  let decoded, len = Decode.decode mem ip in
  check int (Printf.sprintf "len of %s [%s]" (Insn.to_string insn) (hex bytes))
    (String.length bytes) len;
  check insn_testable (Printf.sprintf "roundtrip [%s]" (hex bytes)) insn decoded

let enc_vector insn expected =
  let got = Encode.encode ~ip:0x401000 insn in
  check Alcotest.string
    (Printf.sprintf "encoding of %s" (Insn.to_string insn))
    expected (hex got)

let encode_vector_tests =
  let open Insn in
  [
    Alcotest.test_case "known encodings" `Quick (fun () ->
        enc_vector Nop "90";
        enc_vector (Ret 0) "c3";
        enc_vector (Push (R Eax)) "50";
        enc_vector (Pop (R Edi)) "5f";
        enc_vector (Mov (S32, R Eax, I 0x12345678)) "b8 78 56 34 12";
        enc_vector (Alu (Add, S32, R Eax, R Ebx)) "01 d8";
        enc_vector (Alu (Xor, S32, R Ecx, R Ecx)) "31 c9";
        enc_vector (Alu (Cmp, S32, R Eax, I 1)) "83 f8 01";
        enc_vector (Inc (S32, R Eax)) "ff c0";
        enc_vector Cdq "99";
        enc_vector Hlt "f4";
        enc_vector Ud2 "0f 0b";
        enc_vector (Int_n 0x80) "cd 80";
        enc_vector (Fp Fld1) "d9 e8";
        enc_vector (Fp (Fxch 1)) "d9 c9";
        enc_vector (Mmx Emms) "0f 77");
    Alcotest.test_case "modrm/sib addressing forms" `Quick (fun () ->
        enc_vector (Mov (S32, R Eax, M (Insn.mem_b Ebx))) "8b 03";
        enc_vector (Mov (S32, R Eax, M (Insn.mem_bd Ebx 8))) "8b 43 08";
        enc_vector (Mov (S32, R Eax, M (Insn.mem_bd Ebp 0))) "8b 45 00";
        enc_vector (Mov (S32, R Eax, M (Insn.mem_b Esp))) "8b 04 24";
        enc_vector
          (Mov (S32, R Eax, M (Insn.mem_full Ebx Ecx 4 0x10)))
          "8b 44 8b 10";
        enc_vector (Mov (S32, R Eax, M (Insn.mem_abs 0x8000000))) "8b 05 00 00 00 08");
    Alcotest.test_case "branch displacement" `Quick (fun () ->
        (* jmp from 0x401000 to 0x401005 = fallthrough: rel 0 *)
        enc_vector (Jmp 0x401005) "e9 00 00 00 00";
        enc_vector (Jmp 0x401000) "e9 fb ff ff ff");
  ]

let roundtrip_unit_tests =
  let open Insn in
  let m1 = mem_bd Ebx 0x12 in
  let m2 = mem_full Esi Edi 4 (-8 land 0xFFFFFFFF) in
  let m3 = mem_abs 0x8001000 in
  let samples =
    [
      Nop;
      Ret 0;
      Ret 8;
      Cdq;
      Cwde;
      Pushfd;
      Popfd;
      Cld;
      Std;
      Hlt;
      Ud2;
      Int_n 0x80;
      Mov (S32, R Eax, I 0);
      Mov (S8, R Ebx, I 0xAB);
      Mov (S16, R Ecx, I 0xBEEF);
      Mov (S32, M m1, I 0xCAFEBABE);
      Mov (S8, M m2, R Edx);
      Mov (S16, R Esi, M m3);
      Movzx (S8, Eax, R Ecx);
      Movzx (S16, Edx, M m1);
      Movsx (S8, Ebx, M m2);
      Movsx (S16, Edi, R Eax);
      Lea (Eax, m2);
      Alu (Add, S32, R Eax, R Ebx);
      Alu (Adc, S8, M m1, R Ecx);
      Alu (Sbb, S32, R Edx, M m3);
      Alu (Cmp, S32, R Esp, I 0x1000);
      Alu (And, S16, M m2, I 0xFF0);
      Alu (Xor, S32, R Edi, I 0xFFFFFFFF);
      Test (S32, R Eax, R Eax);
      Test (S8, M m1, I 0x80);
      Shift (Shl, S32, R Eax, Amt_imm 1);
      Shift (Shr, S32, M m1, Amt_imm 5);
      Shift (Sar, S8, R Ecx, Amt_cl);
      Shift (Rol, S16, R Edx, Amt_imm 3);
      Shift (Ror, S32, R Ebx, Amt_cl);
      Shld (R Eax, Ebx, Amt_imm 7);
      Shrd (M m1, Ecx, Amt_cl);
      Inc (S32, R Eax);
      Dec (S8, M m1);
      Neg (S32, R Ecx);
      Not (S16, M m2);
      Imul_rr (Eax, R Ebx);
      Imul_rri (Ecx, M m1, 100);
      Imul_rri (Ecx, R Edx, 100000);
      Mul1 (S32, R Ebx);
      Imul1 (S8, M m1);
      Div (S32, R Ecx);
      Idiv (S16, M m2);
      Xchg (S32, M m1, Eax);
      Push (R Ebp);
      Push (I 4);
      Push (I 0x401000);
      Push (M m3);
      Pop (R Esi);
      Pop (M m1);
      Jmp 0x401234;
      Jcc (Ne, 0x400500);
      Jcc (G, 0x401002);
      Call 0x405000;
      Jmp_ind (R Eax);
      Jmp_ind (M m3);
      Call_ind (R Ebx);
      Call_ind (M m1);
      Setcc (E, R Ecx);
      Setcc (Le, M m1);
      Cmovcc (B, Eax, M m2);
      Cmovcc (Ns, Edx, R Ecx);
      Movs (S8, No_rep);
      Movs (S32, Rep);
      Movs (S16, Rep);
      Stos (S32, Rep);
      Lods (S8, No_rep);
      Scas (S8, Repne);
      Scas (S32, Repe);
      Fp (Fld_m (F32, m1));
      Fp (Fld_m (F64, m3));
      Fp (Fld_st 2);
      Fp Fld1;
      Fp Fldz;
      Fp Fldpi;
      Fp (Fst_m (F64, m1, true));
      Fp (Fst_m (F32, m2, false));
      Fp (Fst_st (3, true));
      Fp (Fild (I32, m1));
      Fp (Fist_m (I32, m1, true));
      Fp (Fist_m (I16, m2, false));
      Fp (Fop_st0_st (FAdd, 1));
      Fp (Fop_st0_st (FDivr, 3));
      Fp (Fop_st_st0 (FMul, 2, true));
      Fp (Fop_st_st0 (FSub, 1, false));
      Fp (Fop_m (FMul, F64, m3));
      Fp (Fop_m (FSubr, F32, m1));
      Fp Fchs;
      Fp Fabs;
      Fp Fsqrt;
      Fp Frndint;
      Fp (Fcom_st (2, 0));
      Fp (Fcom_st (2, 1));
      Fp (Fcom_st (1, 2));
      Fp (Fcom_m (F64, m1, 1));
      Fp Fnstsw_ax;
      Fp (Fxch 4);
      Fp (Ffree 5);
      Fp Fincstp;
      Fp Fdecstp;
      Mmx (Movd_to_mm (3, R Eax));
      Mmx (Movd_from_mm (M m1, 2));
      Mmx (Movq_to_mm (1, MMem m2));
      Mmx (Movq_from_mm (MM 4, 1));
      Mmx (Padd (2, 0, MM 1));
      Mmx (Padd (8, 5, MMem m1));
      Mmx (Psub (4, 2, MM 3));
      Mmx (Pmullw (6, MM 7));
      Mmx (Pand (0, MMem m3));
      Mmx (Por (1, MM 2));
      Mmx (Pxor (3, MM 3));
      Mmx (Pcmpeq (4, 1, MM 0));
      Mmx (Psll (4, 2, 5));
      Mmx (Psrl (8, 6, 63));
      Mmx Emms;
      Sse (Movaps (XM 1, XM 2));
      Sse (Movaps (XMem m1, XM 3));
      Sse (Movups (XM 0, XMem m2));
      Sse (Movss (XM 4, XMem m1));
      Sse (Movss (XMem m1, XM 4));
      Sse (Movsd_x (XM 2, XM 5));
      Sse (Sse_arith (SAdd, Packed_single, 1, XM 2));
      Sse (Sse_arith (SMul, Scalar_double, 3, XMem m1));
      Sse (Sse_arith (SDiv, Scalar_single, 0, XM 7));
      Sse (Sse_arith (SMin, Packed_double, 2, XM 2));
      Sse (Sqrtps (1, XM 1));
      Sse (Andps (2, XMem m3));
      Sse (Orps (3, XM 0));
      Sse (Xorps (4, XM 4));
      Sse (Paddd_x (5, XM 6));
      Sse (Psubd_x (6, XMem m1));
      Sse (Ucomiss (7, XM 0));
      Sse (Cvtsi2ss (1, R Edx));
      Sse (Cvttss2si (Eax, XM 2));
      Sse (Cvtss2sd (3, XMem m2));
      Sse (Cvtsd2ss (4, XM 5));
    ]
  in
  [
    Alcotest.test_case "roundtrip sample set" `Quick (fun () ->
        List.iter roundtrip samples);
  ]

(* ---------------------------------------------------------------- *)
(* Encoder/decoder: qcheck property                                  *)
(* ---------------------------------------------------------------- *)

let gen_insn =
  let open QCheck.Gen in
  let open Insn in
  let reg = oneofl all_regs in
  let reg_noesp = oneofl [ Eax; Ecx; Edx; Ebx; Ebp; Esi; Edi ] in
  let size = oneofl [ S8; S16; S32 ] in
  let disp = oneof [ return 0; map Word.mask32 (int_range (-128) 127);
                     map Word.mask32 (int_range (-100000) 100000) ] in
  let mem =
    let* base = opt reg in
    let* index = opt (pair reg_noesp (oneofl [ 1; 2; 4; 8 ])) in
    let* d = disp in
    return { base; index; disp = d }
  in
  let imm_for s =
    match s with
    | S8 -> map Word.mask8 (int_bound 0xFF)
    | S16 -> map Word.mask16 (int_bound 0xFFFF)
    | S32 -> map Word.mask32 (int_range min_int max_int)
  in
  let operand_rm = oneof [ map (fun r -> R r) reg; map (fun m -> M m) mem ] in
  let target = map Word.mask32 (int_range 0x400000 0x500000) in
  let cond =
    oneofl [ O; No; B; Ae; E; Ne; Be; A; S; Ns; P; Np; L; Ge; Le; G ]
  in
  let amount = oneof [ map (fun n -> Amt_imm n) (int_range 1 31); return Amt_cl ] in
  let alu_gen =
    let* op = oneofl [ Add; Or; Adc; Sbb; And; Sub; Xor; Cmp ] in
    let* s = size in
    oneof
      [
        (let* d = operand_rm in
         let* r = reg in
         return (Alu (op, s, d, R r)));
        (let* r = reg in
         let* m = mem in
         return (Alu (op, s, R r, M m)));
        (let* d = operand_rm in
         let* v = imm_for s in
         return (Alu (op, s, d, I v)));
      ]
  in
  let mmx_rm = oneof [ map (fun k -> MM k) (int_bound 7); map (fun m -> MMem m) mem ] in
  let xmm_rm = oneof [ map (fun k -> XM k) (int_bound 7); map (fun m -> XMem m) mem ] in
  let xmm = int_bound 7 in
  let fp_gen =
    oneof
      [
        map (fun k -> Fp (Fld_st k)) (int_bound 7);
        (let* fs = oneofl [ F32; F64 ] in
         let* m = mem in
         return (Fp (Fld_m (fs, m))));
        return (Fp Fld1);
        return (Fp Fldz);
        (let* k = int_bound 7 in
         let* p = bool in
         return (Fp (Fst_st (k, p))));
        (let* fs = oneofl [ F32; F64 ] in
         let* m = mem in
         let* p = bool in
         return (Fp (Fst_m (fs, m, p))));
        (let* op = oneofl [ FAdd; FSub; FSubr; FMul; FDiv; FDivr ] in
         let* k = int_bound 7 in
         return (Fp (Fop_st0_st (op, k))));
        (let* op = oneofl [ FAdd; FSub; FSubr; FMul; FDiv; FDivr ] in
         let* k = int_bound 7 in
         let* p = bool in
         return (Fp (Fop_st_st0 (op, k, p))));
        (let* op = oneofl [ FAdd; FSub; FSubr; FMul; FDiv; FDivr ] in
         let* fs = oneofl [ F32; F64 ] in
         let* m = mem in
         return (Fp (Fop_m (op, fs, m))));
        map (fun k -> Fp (Fxch k)) (int_bound 7);
        (let* k = int_bound 7 in
         let* p = oneofl [ 0; 1 ] in
         return (Fp (Fcom_st (k, p))));
        return (Fp Fnstsw_ax);
        return (Fp Fchs);
        return (Fp Fsqrt);
      ]
  in
  let mmx_gen =
    oneof
      [
        (let* k = int_bound 7 in
         let* o = operand_rm in
         return (Mmx (Movd_to_mm (k, o))));
        (let* k = int_bound 7 in
         let* s = mmx_rm in
         return (Mmx (Movq_to_mm (k, s))));
        (let* w = oneofl [ 1; 2; 4; 8 ] in
         let* k = int_bound 7 in
         let* s = mmx_rm in
         return (Mmx (Padd (w, k, s))));
        (let* w = oneofl [ 1; 2; 4; 8 ] in
         let* k = int_bound 7 in
         let* s = mmx_rm in
         return (Mmx (Psub (w, k, s))));
        (let* k = int_bound 7 in
         let* s = mmx_rm in
         return (Mmx (Pxor (k, s))));
        (let* w = oneofl [ 2; 4; 8 ] in
         let* k = int_bound 7 in
         let* n = int_bound 63 in
         return (Mmx (Psll (w, k, n))));
        return (Mmx Emms);
      ]
  in
  let sse_gen =
    oneof
      [
        (let* d = xmm in
         let* s = xmm_rm in
         return (Sse (Movaps (XM d, s))));
        (let* m = mem in
         let* s = xmm in
         return (Sse (Movaps (XMem m, XM s))));
        (let* op = oneofl [ SAdd; SSub; SMul; SDiv; SMin; SMax ] in
         let* fmt =
           oneofl [ Packed_single; Packed_double; Scalar_single; Scalar_double ]
         in
         let* d = xmm in
         let* s = xmm_rm in
         return (Sse (Sse_arith (op, fmt, d, s))));
        (let* d = xmm in
         let* s = xmm_rm in
         return (Sse (Xorps (d, s))));
        (let* d = xmm in
         let* s = xmm_rm in
         return (Sse (Ucomiss (d, s))));
        (let* d = xmm in
         let* o = operand_rm in
         return (Sse (Cvtsi2ss (d, o))));
      ]
  in
  oneof
    [
      alu_gen;
      (let* s = size in
       let* d = operand_rm in
       let* r = reg in
       return (Mov (s, d, R r)));
      (let* s = size in
       let* r = reg in
       let* v = imm_for s in
       return (Mov (s, R r, I v)));
      (let* s = size in
       let* m = mem in
       let* v = imm_for s in
       return (Mov (s, M m, I v)));
      (let* s = oneofl [ S8; S16 ] in
       let* r = reg in
       let* o = operand_rm in
       return (Movzx (s, r, o)));
      (let* s = oneofl [ S8; S16 ] in
       let* r = reg in
       let* o = operand_rm in
       return (Movsx (s, r, o)));
      (let* r = reg in
       let* m = mem in
       return (Lea (r, m)));
      (let* sh = oneofl [ Shl; Shr; Sar; Rol; Ror ] in
       let* s = size in
       let* d = operand_rm in
       let* a = amount in
       return (Shift (sh, s, d, a)));
      (let* s = size in
       let* d = operand_rm in
       return (Inc (s, d)));
      (let* s = size in
       let* d = operand_rm in
       return (Neg (s, d)));
      (let* r = reg in
       let* o = operand_rm in
       return (Imul_rr (r, o)));
      (let* s = size in
       let* o = operand_rm in
       return (Div (s, o)));
      (let* o = oneof [ map (fun r -> R r) reg; map (fun m -> M m) mem;
                        map (fun v -> I v) (imm_for S32) ] in
       return (Push o));
      (let* o = operand_rm in
       return (Pop o));
      map (fun t -> Jmp t) target;
      (let* c = cond in
       let* t = target in
       return (Jcc (c, t)));
      map (fun t -> Call t) target;
      (let* o = operand_rm in
       return (Jmp_ind o));
      (let* c = cond in
       let* o = operand_rm in
       return (Setcc (c, o)));
      (let* c = cond in
       let* r = reg in
       let* o = operand_rm in
       return (Cmovcc (c, r, o)));
      (let* s = size in
       let* r = oneofl [ No_rep; Rep; Repne ] in
       return (Movs (s, r)));
      (let* s = size in
       let* r = oneofl [ No_rep; Repe; Repne ] in
       return (Scas (s, r)));
      fp_gen;
      mmx_gen;
      sse_gen;
      return Nop;
      return Cdq;
      return (Ret 0);
    ]

let arbitrary_insn = QCheck.make ~print:Insn.to_string gen_insn

let qcheck_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arbitrary_insn
    (fun insn ->
      let ip = 0x401000 in
      let bytes = Encode.encode ~ip insn in
      let mem = Memory.create () in
      Memory.map mem ~addr:0x400000 ~len:0x10000 ~prot:Memory.prot_rwx;
      Memory.load_bytes mem ip bytes;
      let decoded, len = Decode.decode mem ip in
      decoded = insn && len = String.length bytes)

(* ---------------------------------------------------------------- *)
(* Interpreter                                                       *)
(* ---------------------------------------------------------------- *)

(* Run [items] (assembled at the default bases) under the interpreter until
   the exit syscall (int 0x80 with eax = 1) and return the final state. *)
let run_asm ?(data = []) ?(fuel = 1_000_000) items =
  let image = Asm.build ~code:items ~data () in
  let mem = Memory.create () in
  let st = Asm.load image mem in
  let rec go n =
    if n <= 0 then Alcotest.fail "out of fuel"
    else
      match Interp.step st with
      | Interp.Normal -> go (n - 1)
      | Interp.Syscall _ -> st
      | Interp.Faulted f -> Alcotest.failf "unexpected fault %s" (Fault.to_string f)
  in
  go fuel

let exit_seq = [ Asm.i (Insn.Int_n 0x80) ]

let interp_tests =
  let open Insn in
  let open Asm in
  [
    Alcotest.test_case "mov and add" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start"; i (Mov (S32, R Eax, I 40)); i (Alu (Add, S32, R Eax, I 2)) ]
            @ exit_seq)
        in
        check int "eax" 42 (State.get32 st Eax));
    Alcotest.test_case "add flags: carry and overflow" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0xFFFFFFFF));
               i (Alu (Add, S32, R Eax, I 1)) ]
            @ exit_seq)
        in
        check int "eax" 0 (State.get32 st Eax);
        check bool "cf" true st.State.cf;
        check bool "zf" true st.State.zf;
        check bool "of" false st.State.of_;
        let st2 =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0x7FFFFFFF));
               i (Alu (Add, S32, R Eax, I 1)) ]
            @ exit_seq)
        in
        check bool "of2" true st2.State.of_;
        check bool "sf2" true st2.State.sf;
        check bool "cf2" false st2.State.cf);
    Alcotest.test_case "sub borrow chain sbb" `Quick (fun () ->
        (* 64-bit decrement of 0x1_00000000 via sub/sbb *)
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0));
               i (Mov (S32, R Edx, I 1));
               i (Alu (Sub, S32, R Eax, I 1));
               i (Alu (Sbb, S32, R Edx, I 0)) ]
            @ exit_seq)
        in
        check int "lo" 0xFFFFFFFF (State.get32 st Eax);
        check int "hi" 0 (State.get32 st Edx));
    Alcotest.test_case "inc preserves carry" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0xFFFFFFFF));
               i (Alu (Add, S32, R Eax, I 1)); (* sets CF *)
               i (Inc (S32, R Eax)) ]
            @ exit_seq)
        in
        check bool "cf preserved" true st.State.cf;
        check int "eax" 1 (State.get32 st Eax));
    Alcotest.test_case "mul / div round trip" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 123456));
               i (Mov (S32, R Ebx, I 789));
               i (Mul1 (S32, R Ebx));
               (* edx:eax = 123456*789 = 97406784 *)
               i (Mov (S32, R Ecx, I 1000));
               i (Div (S32, R Ecx)) ]
            @ exit_seq)
        in
        check int "quotient" 97406 (State.get32 st Eax);
        check int "remainder" 784 (State.get32 st Edx));
    Alcotest.test_case "idiv with negative dividend" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I (Word.mask32 (-7))));
               i Cdq;
               i (Mov (S32, R Ecx, I 2));
               i (Idiv (S32, R Ecx)) ]
            @ exit_seq)
        in
        check int "q" (Word.mask32 (-3)) (State.get32 st Eax);
        check int "r" (Word.mask32 (-1)) (State.get32 st Edx));
    Alcotest.test_case "div by zero faults precisely" `Quick (fun () ->
        let image =
          Asm.build
            ~code:
              [ label "start";
                i (Mov (S32, R Eax, I 5));
                i (Mov (S32, R Ecx, I 0));
                label "divpoint";
                i (Div (S32, R Ecx)) ]
            ~data:[] ()
        in
        let mem = Memory.create () in
        let st = Asm.load image mem in
        let stop, _ = Interp.run st in
        (match stop with
        | Interp.Stop_fault Fault.Divide_error -> ()
        | _ -> Alcotest.fail "expected #DE");
        check int "eip at faulting insn" (image.Asm.lookup "divpoint") st.State.eip;
        check int "eax unchanged" 5 (State.get32 st Eax));
    Alcotest.test_case "push/pop/call/ret" `Quick (fun () ->
        let st =
          run_asm
            [ label "start";
              i (Mov (S32, R Eax, I 1));
              call "fn";
              i (Alu (Add, S32, R Eax, I 10));
              i (Int_n 0x80);
              label "fn";
              i (Alu (Add, S32, R Eax, I 100));
              i (Ret 0) ]
        in
        check int "eax" 111 (State.get32 st Eax);
        check int "esp restored" Asm.default_stack_top (State.get32 st Esp));
    Alcotest.test_case "push eax decrements esp by 4" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start"; i (Mov (S32, R Eax, I 0x1234)); i (Push (R Eax)) ]
            @ exit_seq)
        in
        check int "esp" (Asm.default_stack_top - 4) (State.get32 st Esp);
        check int "stored" 0x1234 (Memory.read32 st.State.mem (State.get32 st Esp)));
    Alcotest.test_case "loop with jcc" `Quick (fun () ->
        (* sum 1..10 *)
        let st =
          run_asm
            [ label "start";
              i (Mov (S32, R Eax, I 0));
              i (Mov (S32, R Ecx, I 10));
              label "loop";
              i (Alu (Add, S32, R Eax, R Ecx));
              i (Dec (S32, R Ecx));
              jcc Ne "loop";
              i (Int_n 0x80) ]
        in
        check int "sum" 55 (State.get32 st Eax));
    Alcotest.test_case "8-bit subregisters ah/al" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0x11223344));
               i (Mov (S8, R Esp (* ah, index 4 *), I 0xAA));
               i (Mov (S8, R Eax (* al *), I 0xBB)) ]
            @ exit_seq)
        in
        check int "eax" 0x1122AABB (State.get32 st Eax));
    Alcotest.test_case "16-bit ops leave upper half" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Ebx, I 0xAABB0000));
               i (Alu (Add, S16, R Ebx, I 0x1234)) ]
            @ exit_seq)
        in
        check int "ebx" 0xAABB1234 (State.get32 st Ebx));
    Alcotest.test_case "shifts" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0x80000001));
               i (Shift (Shl, S32, R Eax, Amt_imm 1)) ]
            @ exit_seq)
        in
        check int "shl" 2 (State.get32 st Eax);
        check bool "cf out" true st.State.cf;
        check bool "of (msb^cf)" true st.State.of_;
        let st2 =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 0x80000000));
               i (Shift (Sar, S32, R Eax, Amt_imm 31)) ]
            @ exit_seq)
        in
        check int "sar" 0xFFFFFFFF (State.get32 st2 Eax));
    Alcotest.test_case "rep movs copies" `Quick (fun () ->
        let st =
          run_asm
            ~data:
              [ label "src"; raw "hello, world!!!!"; label "dst"; space 16 ]
            [ label "start";
              mov_ri_lab Esi "src";
              mov_ri_lab Edi "dst";
              i (Mov (S32, R Ecx, I 4));
              i Cld;
              i (Movs (S32, Rep));
              i (Int_n 0x80) ]
        in
        check int "ecx" 0 (State.get32 st Ecx);
        let image_data_base = Asm.default_data_base in
        check Alcotest.string "copied" "hello, world!!!!"
          (Memory.dump_bytes st.State.mem (image_data_base + 16) 16));
    Alcotest.test_case "std reverses string direction" `Quick (fun () ->
        let st =
          run_asm
            ~data:[ label "buf"; space 16 ]
            [ label "start";
              mov_ri_lab Edi "buf";
              i (Alu (Add, S32, R Edi, I 12));
              i (Mov (S32, R Eax, I 0xAABBCCDD));
              i (Mov (S32, R Ecx, I 4));
              i Std;
              i (Stos (S32, Rep));
              i Cld;
              i (Int_n 0x80) ]
        in
        check int "edi below buf" (Asm.default_data_base - 4)
          (State.get32 st Edi);
        check int "last store at buf" 0xAABBCCDD
          (Memory.read32 st.State.mem Asm.default_data_base));
    Alcotest.test_case "x87 arithmetic" `Quick (fun () ->
        let st =
          run_asm
            ~data:[ label "a"; df64 1.5; label "b"; df64 2.25; label "out"; space 8 ]
            [ label "start";
              with_lab "a" (fun a -> Fp (Fld_m (F64, Insn.mem_abs a)));
              with_lab "b" (fun a -> Fp (Fop_m (FMul, F64, Insn.mem_abs a)));
              with_lab "out" (fun a -> Fp (Fst_m (F64, Insn.mem_abs a, true)));
              i (Int_n 0x80) ]
        in
        Alcotest.check (Alcotest.float 0.0) "product" 3.375
          (Memory.read_f64 st.State.mem (st.State.mem |> fun m ->
               ignore m; Asm.default_data_base + 16)));
    Alcotest.test_case "fxch + fsub order" `Quick (fun () ->
        let st =
          run_asm
            ~data:[ label "out"; space 8 ]
            [ label "start";
              i (Fp Fld1); (* st0=1 *)
              i (Fp Fldz); (* st0=0 st1=1 *)
              i (Fp (Fxch 1)); (* st0=1 st1=0 *)
              i (Fp (Fop_st_st0 (FSub, 1, true))); (* st1 = st1-st0 = -1; pop *)
              with_lab "out" (fun a -> Fp (Fst_m (F64, Insn.mem_abs a, true)));
              i (Int_n 0x80) ]
        in
        Alcotest.check (Alcotest.float 0.0) "result" (-1.0)
          (Memory.read_f64 st.State.mem Asm.default_data_base));
    Alcotest.test_case "fild/fistp roundtrip with rounding" `Quick (fun () ->
        let st =
          run_asm
            ~data:[ label "n"; dd 7; label "out"; space 4 ]
            [ label "start";
              with_lab "n" (fun a -> Fp (Fild (I32, Insn.mem_abs a)));
              i (Fp (Fld_st 0));
              i (Fp (Fop_st_st0 (FAdd, 1, true))); (* st0 = 14 *)
              with_lab "out" (fun a -> Fp (Fist_m (I32, Insn.mem_abs a, true)));
              i (Int_n 0x80) ]
        in
        check int "14" 14 (Memory.read32 st.State.mem (Asm.default_data_base + 4)));
    Alcotest.test_case "fcom + fnstsw" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Fp Fldz);
               i (Fp Fld1);
               (* st0=1 st1=0; 1 > 0 -> c0=c2=c3=0 *)
               i (Fp (Fcom_st (1, 0)));
               i (Fp Fnstsw_ax) ]
            @ exit_seq)
        in
        check int "cc clear" 0 (State.get16 st Eax land 0x4500));
    Alcotest.test_case "mmx add lanes" `Quick (fun () ->
        let st =
          run_asm
            ~data:
              [ label "a"; dq 0x0001000200030004L; label "b"; dq 0x0010002000300040L;
                label "out"; space 8 ]
            [ label "start";
              with_lab "a" (fun a -> Mmx (Movq_to_mm (0, MMem (Insn.mem_abs a))));
              with_lab "b" (fun a -> Mmx (Padd (2, 0, MMem (Insn.mem_abs a))));
              with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (Insn.mem_abs a), 0)));
              i (Int_n 0x80) ]
        in
        Alcotest.check Alcotest.int64 "lanes" 0x0011002200330044L
          (Memory.read64 st.State.mem (Asm.default_data_base + 16)));
    Alcotest.test_case "mmx lane overflow wraps per lane" `Quick (fun () ->
        let st =
          run_asm
            ~data:
              [ label "a"; dq 0x0000FFFF0000FFFFL; label "b"; dq 0x0000000100000001L;
                label "out"; space 8 ]
            [ label "start";
              with_lab "a" (fun a -> Mmx (Movq_to_mm (1, MMem (Insn.mem_abs a))));
              with_lab "b" (fun a -> Mmx (Padd (2, 1, MMem (Insn.mem_abs a))));
              with_lab "out" (fun a -> Mmx (Movq_from_mm (MMem (Insn.mem_abs a), 1)));
              i (Int_n 0x80) ]
        in
        Alcotest.check Alcotest.int64 "wrap" 0x0000000000000000L
          (Memory.read64 st.State.mem (Asm.default_data_base + 16)));
    Alcotest.test_case "sse packed add" `Quick (fun () ->
        let st =
          run_asm
            ~data:
              [ label "a"; df32 1.0; df32 2.0; df32 3.0; df32 4.0;
                label "b"; df32 10.0; df32 20.0; df32 30.0; df32 40.0;
                label "out"; space 16 ]
            [ label "start";
              with_lab "a" (fun a -> Sse (Movups (XM 0, XMem (Insn.mem_abs a))));
              with_lab "b" (fun a ->
                  Sse (Sse_arith (SAdd, Packed_single, 0, XMem (Insn.mem_abs a))));
              with_lab "out" (fun a -> Sse (Movups (XMem (Insn.mem_abs a), XM 0)));
              i (Int_n 0x80) ]
        in
        let base = Asm.default_data_base + 32 in
        Alcotest.check (Alcotest.float 0.0) "lane0" 11.0
          (Memory.read_f32 st.State.mem base);
        Alcotest.check (Alcotest.float 0.0) "lane3" 44.0
          (Memory.read_f32 st.State.mem (base + 12)));
    Alcotest.test_case "ucomiss sets flags" `Quick (fun () ->
        let st =
          run_asm
            ~data:[ label "a"; df32 1.0; label "b"; df32 2.0 ]
            ([ label "start";
               with_lab "a" (fun a -> Sse (Movss (XM 0, XMem (Insn.mem_abs a))));
               with_lab "b" (fun a -> Sse (Movss (XM 1, XMem (Insn.mem_abs a))));
               i (Sse (Ucomiss (0, XM 1))) ]
            @ exit_seq)
        in
        check bool "cf (lt)" true st.State.cf;
        check bool "zf" false st.State.zf);
    Alcotest.test_case "jump table via indirect jmp" `Quick (fun () ->
        let st =
          run_asm
            ~data:[ label "table"; dd_lab "case0"; dd_lab "case1"; dd_lab "case2" ]
            [ label "start";
              i (Mov (S32, R Ecx, I 2));
              with_lab "table" (fun a ->
                  Jmp_ind (M { base = None; index = Some (Ecx, 4); disp = a }));
              label "case0";
              i (Mov (S32, R Eax, I 100));
              i (Int_n 0x80);
              label "case1";
              i (Mov (S32, R Eax, I 200));
              i (Int_n 0x80);
              label "case2";
              i (Mov (S32, R Eax, I 300));
              i (Int_n 0x80) ]
        in
        check int "case2 taken" 300 (State.get32 st Eax));
    Alcotest.test_case "setcc & cmov" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Mov (S32, R Eax, I 5));
               i (Mov (S32, R Ebx, I 9));
               i (Alu (Cmp, S32, R Eax, R Ebx));
               i (Setcc (L, R Ecx)); (* cl = 1 *)
               i (Mov (S32, R Edx, I 0));
               i (Cmovcc (L, Edx, R Ebx)) ]
            @ exit_seq)
        in
        check int "setl" 1 (State.get8 st Ecx);
        check int "cmovl" 9 (State.get32 st Edx));
    Alcotest.test_case "pushfd/popfd restores flags" `Quick (fun () ->
        let st =
          run_asm
            ([ label "start";
               i (Alu (Cmp, S32, R Eax, R Eax)); (* ZF=1 *)
               i Pushfd;
               i (Alu (Cmp, S32, R Esp, I 0)); (* clobbers ZF *)
               i Popfd ]
            @ exit_seq)
        in
        check bool "zf restored" true st.State.zf);
    Alcotest.test_case "hlt faults as privileged" `Quick (fun () ->
        let image = Asm.build ~code:[ label "start"; i Hlt ] ~data:[] () in
        let st = Asm.load image (Memory.create ()) in
        match Interp.run st with
        | Interp.Stop_fault Fault.Privileged, _ -> ()
        | _ -> Alcotest.fail "expected #GP");
    Alcotest.test_case "page fault state precision" `Quick (fun () ->
        (* push eax with esp pointing at an unmapped page: ESP must keep its
           pre-push value in the faulted state — the paper's Table 1. *)
        let image =
          Asm.build
            ~code:
              [ label "start";
                i (Mov (S32, R Esp, I 0x30000000)); (* unmapped *)
                i (Mov (S32, R Eax, I 0x1234));
                label "faultpoint";
                i (Push (R Eax)) ]
            ~data:[] ()
        in
        let st = Asm.load image (Memory.create ()) in
        (match Interp.run st with
        | Interp.Stop_fault (Fault.Page_fault (a, Fault.Write)), _ ->
          check int "fault addr" 0x2FFFFFFC a
        | _ -> Alcotest.fail "expected #PF");
        check int "esp preserved" 0x30000000 (State.get32 st Esp);
        check int "eip at push" (image.Asm.lookup "faultpoint") st.State.eip);
  ]

(* ---------------------------------------------------------------- *)
(* Fpconv                                                            *)
(* ---------------------------------------------------------------- *)

let fpconv_tests =
  [
    Alcotest.test_case "rint ties to even" `Quick (fun () ->
        Alcotest.check (Alcotest.float 0.0) "0.5" 0.0 (Fpconv.rint 0.5);
        Alcotest.check (Alcotest.float 0.0) "1.5" 2.0 (Fpconv.rint 1.5);
        Alcotest.check (Alcotest.float 0.0) "2.5" 2.0 (Fpconv.rint 2.5);
        Alcotest.check (Alcotest.float 0.0) "-0.5" 0.0 (Fpconv.rint (-0.5));
        Alcotest.check (Alcotest.float 0.0) "-1.5" (-2.0) (Fpconv.rint (-1.5));
        Alcotest.check (Alcotest.float 0.0) "1.2" 1.0 (Fpconv.rint 1.2));
    Alcotest.test_case "fist indefinite" `Quick (fun () ->
        check int "nan" 0x80000000 (Fpconv.fist ~bits:32 Float.nan);
        check int "big" 0x80000000 (Fpconv.fist ~bits:32 1e30);
        check int "ok" (Word.mask32 (-5)) (Fpconv.fist ~bits:32 (-5.0));
        check int "16-bit" 0x8000 (Fpconv.fist ~bits:16 1e9));
    Alcotest.test_case "cvtt truncates" `Quick (fun () ->
        check int "1.9" 1 (Fpconv.cvtt32 1.9);
        check int "-1.9" (Word.mask32 (-1)) (Fpconv.cvtt32 (-1.9)));
    Alcotest.test_case "f32 bits roundtrip" `Quick (fun () ->
        check int "1.0f" 0x3F800000 (Fpconv.bits_of_f32 1.0);
        Alcotest.check (Alcotest.float 0.0) "back" 1.0
          (Fpconv.f32_of_bits 0x3F800000));
    Alcotest.test_case "ps lanes" `Quick (fun () ->
        let h = Fpconv.ps_set (Fpconv.ps_set 0L 0 1.5) 1 (-2.0) in
        Alcotest.check (Alcotest.float 0.0) "lane0" 1.5 (Fpconv.ps_get h 0);
        Alcotest.check (Alcotest.float 0.0) "lane1" (-2.0) (Fpconv.ps_get h 1));
  ]

(* ---------------------------------------------------------------- *)
(* Asm                                                               *)
(* ---------------------------------------------------------------- *)

let asm_tests =
  let open Asm in
  [
    Alcotest.test_case "labels resolve across sections" `Quick (fun () ->
        let image =
          build
            ~code:[ label "start"; mov_ri_lab Insn.Eax "var"; i (Insn.Int_n 0x80) ]
            ~data:[ label "var"; dd 99 ]
            ()
        in
        check int "var addr" default_data_base (image.lookup "var");
        check int "entry" default_code_base (image.entry));
    Alcotest.test_case "undefined label errors" `Quick (fun () ->
        Alcotest.check_raises "error" (Asm.Error "assembler: undefined label \"nope\"")
          (fun () -> ignore (build ~code:[ label "start"; jmp "nope" ] ~data:[] ())));
    Alcotest.test_case "align pads with nops" `Quick (fun () ->
        let parts, lookup =
          assemble [ section ~base:0x1000 [ i Insn.Nop; align 16; label "aligned" ] ]
        in
        check int "aligned" 0x1010 (lookup "aligned");
        match parts with
        | [ (_, bytes) ] -> check int "len" 16 (String.length bytes)
        | _ -> Alcotest.fail "one section");
    Alcotest.test_case "backward and forward jumps" `Quick (fun () ->
        (* just check it assembles and runs: 3 iterations *)
        let st =
          run_asm
            [ label "start";
              i (Insn.Mov (Insn.S32, Insn.R Insn.Eax, Insn.I 0));
              i (Insn.Mov (Insn.S32, Insn.R Insn.Ecx, Insn.I 3));
              jmp "check";
              label "body";
              i (Insn.Alu (Insn.Add, Insn.S32, Insn.R Insn.Eax, Insn.I 2));
              i (Insn.Dec (Insn.S32, Insn.R Insn.Ecx));
              label "check";
              i (Insn.Test (Insn.S32, Insn.R Insn.Ecx, Insn.R Insn.Ecx));
              jcc Insn.Ne "body";
              i (Insn.Int_n 0x80) ]
        in
        check int "eax" 6 (State.get32 st Insn.Eax));
  ]

(* ---------------------------------------------------------------- *)
(* Encoder/decoder round-trip over the fuzzer's generators           *)
(* ---------------------------------------------------------------- *)

(* The differential fuzzer samples the instruction surface with its own
   generators; every instruction it can emit must survive encode/decode. *)
let fuzzgen_roundtrip_tests =
  [
    Alcotest.test_case "gen_insn surface roundtrips" `Quick (fun () ->
        let rng = Harness.Fuzz.Rng.create 42 in
        for _ = 1 to 2000 do
          roundtrip (Harness.Fuzz.gen_insn rng)
        done);
    Alcotest.test_case "generated program insns roundtrip" `Quick (fun () ->
        let rng = Harness.Fuzz.Rng.create 7 in
        for seed = 0 to 19 do
          let p = Harness.Fuzz.generate ~rng ~max_insns:32 seed in
          List.iter roundtrip (Harness.Fuzz.prog_insns p)
        done);
  ]

let () =
  Alcotest.run "ia32"
    [
      ("word", word_tests);
      ("memory", mem_tests);
      ("journal", journal_tests);
      ("fpu", fpu_tests);
      ("fpconv", fpconv_tests);
      ("encode-vectors", encode_vector_tests);
      ("roundtrip-unit", roundtrip_unit_tests);
      ("roundtrip-qcheck", [ QCheck_alcotest.to_alcotest qcheck_roundtrip ]);
      ("roundtrip-fuzzgen", fuzzgen_roundtrip_tests);
      ("interp", interp_tests);
      ("asm", asm_tests);
    ]
