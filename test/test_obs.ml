(* Observability subsystem tests: the hand-rolled JSON layer, the trace
   ring buffer and its Chrome export, the Account drift guard that keeps
   [counters]/[all_fields] honest against the record's physical layout,
   and the end-to-end guarantees (tracing never perturbs a run; the
   profiler attributes hot cycles to named guest blocks). *)

module J = Obs.Metrics
module T = Obs.Trace
module P = Obs.Profile
module B = Workloads.Baselines
module E = Ia32el.Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ---------------- JSON ---------------- *)

let test_json_round_trip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("n", J.Int (-42));
        ("t", J.Bool true);
        ("z", J.Null);
        ("l", J.List [ J.Int 1; J.Str "x"; J.Obj [] ]);
        ("o", J.Obj [ ("inner", J.List []) ]);
      ]
  in
  (match J.parse (J.json_to_string v) with
  | Ok v' -> checkb "round trip" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  match J.parse (J.json_to_string ~pretty:false v) with
  | Ok v' -> checkb "compact round trip" true (v = v')
  | Error e -> Alcotest.failf "compact reparse failed: %s" e

let test_json_parse () =
  (match J.parse {| {"a": [1, 2.5, "A\n", false, null]} |} with
  | Ok (J.Obj [ ("a", J.List [ J.Int 1; J.Float f; J.Str s; J.Bool false; J.Null ]) ])
    ->
    checkb "float" true (abs_float (f -. 2.5) < 1e-9);
    check Alcotest.string "escape" "A\n" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match J.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match J.parse "[1, ]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted"

let test_metrics_snapshot () =
  let m = J.make ~schema:"test/1" in
  J.section m "counters" [ ("a", J.Int 3); ("b", J.Int 0); ("c", J.Str "x") ];
  J.section m "cycles" [ ("total", J.Int 7) ];
  check
    Alcotest.(list (pair string int))
    "counters" [ ("a", 3); ("b", 0) ] (J.counters m);
  match J.parse (J.to_string m) with
  | Ok j ->
    (match J.member "schema" j with
    | Some (J.Str "test/1") -> ()
    | _ -> Alcotest.fail "schema lost");
    (match J.member "cycles" j with
    | Some (J.Obj [ ("total", J.Int 7) ]) -> ()
    | _ -> Alcotest.fail "cycles section lost")
  | Error e -> Alcotest.failf "snapshot JSON invalid: %s" e

(* ---------------- trace ring ---------------- *)

let test_ring_wrap () =
  let tr = T.create ~capacity:8 () in
  let clock = ref 0 in
  T.set_clock tr (fun () ->
      incr clock;
      !clock);
  for i = 0 to 19 do
    T.emit tr (T.Dispatch { eip = i })
  done;
  checki "capacity" 8 (T.capacity tr);
  checki "length" 8 (T.length tr);
  checki "dropped" 12 (T.dropped tr);
  let evs = T.events tr in
  checki "retained" 8 (List.length evs);
  List.iteri
    (fun i (e : T.event) ->
      match e.T.ev with
      | T.Dispatch { eip } ->
        checki "oldest-first eip" (12 + i) eip;
        checki "clock stamp" (13 + i) e.T.at
      | _ -> Alcotest.fail "wrong event")
    evs

let test_echo_hook () =
  let tr = T.create ~capacity:4 () in
  let seen = ref 0 in
  T.set_echo tr (fun _ -> incr seen);
  T.emit tr (T.Heat_trigger { entry = 0x1000; registered = 1 });
  T.emit tr (T.Tcache_evict { bundles = 9 });
  checki "echo called per emit" 2 !seen

let test_chrome_export () =
  let tr = T.create ~capacity:16 () in
  let clock = ref 0 in
  T.set_clock tr (fun () ->
      clock := !clock + 100;
      !clock);
  T.emit tr (T.Dispatch { eip = 0x8048000 });
  T.emit tr
    (T.Trans_end { phase = T.Cold; entry = 0x8048000; insns = 5; cycles = 60 });
  T.emit tr (T.Syscall_enter { name = "write" });
  T.emit tr
    (T.Syscall_exit { name = "write"; kernel_cycles = 40; idle_cycles = 0 });
  let s = Buffer.contents (T.to_chrome tr) in
  match J.parse s with
  | Ok (J.List evs) ->
    checki "event count" 4 (List.length evs);
    let spans =
      List.filter (fun e -> J.member "ph" e = Some (J.Str "X")) evs
    in
    checki "span events" 2 (List.length spans);
    List.iter
      (fun e ->
        (match J.member "dur" e with
        | Some (J.Int d) -> checkb "positive dur" true (d > 0)
        | _ -> Alcotest.fail "span without dur");
        match (J.member "ts" e, J.member "name" e) with
        | Some (J.Int ts), Some (J.Str _) -> checkb "ts >= 0" true (ts >= 0)
        | _ -> Alcotest.fail "span missing ts/name")
      spans
  | Ok _ -> Alcotest.fail "chrome export is not an array"
  | Error e -> Alcotest.failf "chrome export invalid: %s" e

(* ---------------- Account drift guard ---------------- *)

(* [Account.t] is all-int, so its heap block has one word per field.
   Write a distinctive value into every word through [Obj] and require
   [all_fields] to read back exactly those values in order: any field
   added to the record without being added to [all_fields] (and so
   invisible to metrics and fuzzer coverage) trips the size check; any
   reordering or duplication trips the value check. *)
let test_all_fields_complete () =
  let a = Ia32el.Account.create () in
  let fields = Ia32el.Account.all_fields a in
  let r = Obj.repr a in
  checkb "flat int record" true (Obj.tag r = 0);
  checki "all_fields covers every record field" (Obj.size r)
    (List.length fields);
  for k = 0 to Obj.size r - 1 do
    Obj.set_field r k (Obj.repr ((1000 * k) + 7))
  done;
  List.iteri
    (fun k (name, v) ->
      checki (Printf.sprintf "field %s in declaration order" name)
        ((1000 * k) + 7)
        v)
    (Ia32el.Account.all_fields a)

let test_counters_partition () =
  let a = Ia32el.Account.create () in
  let all = List.map fst (Ia32el.Account.all_fields a) in
  let counters = List.map fst (Ia32el.Account.counters a) in
  let non_event = Ia32el.Account.non_event_fields in
  let sorted l = List.sort compare l in
  List.iter
    (fun n ->
      checkb (Printf.sprintf "counter %s is a real field" n) true
        (List.mem n all))
    counters;
  List.iter
    (fun n ->
      checkb (Printf.sprintf "non-event %s is a real field" n) true
        (List.mem n all);
      checkb (Printf.sprintf "non-event %s not double-counted" n) false
        (List.mem n counters))
    non_event;
  check
    Alcotest.(list string)
    "counters + non_event partition all fields" (sorted all)
    (sorted (counters @ non_event))

(* ---------------- end-to-end guarantees ---------------- *)

let run_gzip ?attach () =
  let r = B.run_el ?attach Workloads.Spec_int.gzip ~scale:1 in
  match r.B.engine with
  | Some e -> (r.B.cycles, e)
  | None -> Alcotest.fail "no engine"

let test_tracing_is_free () =
  let plain_cycles, plain_eng = run_gzip () in
  let tr = T.create () in
  let p = P.create () in
  let traced_cycles, traced_eng =
    run_gzip
      ~attach:(fun e ->
        E.attach_trace e tr;
        E.attach_profile e p)
      ()
  in
  checki "cycles identical with observability" plain_cycles traced_cycles;
  check
    Alcotest.(list (pair string int))
    "counters identical with observability"
    (Ia32el.Account.counters plain_eng.E.acct)
    (Ia32el.Account.counters traced_eng.E.acct);
  checkb "trace saw events" true (T.length tr > 0)

let test_profile_attribution () =
  let p = P.create () in
  let _, eng = run_gzip ~attach:(fun e -> E.attach_profile e p) () in
  let m = eng.E.machine in
  let hot_bucket = m.Ipf.Machine.buckets.(Ia32el.Account.bucket_hot) in
  let cold_bucket = m.Ipf.Machine.buckets.(Ia32el.Account.bucket_cold) in
  checkb "gzip runs hot code" true (hot_bucket > 0);
  (* the probe mirrors bucket_fn exactly, so totals must match 1:1 *)
  checki "hot attribution exact" hot_bucket (P.hot_exec p);
  checki "cold attribution exact" cold_bucket (P.cold_exec p);
  (* acceptance criterion: top 10 blocks own >= 90% of hot-phase cycles *)
  let top_hot =
    List.fold_left
      (fun acc (_, (row : P.row)) -> acc + row.P.hot_cycles)
      0 (P.top 10 p)
  in
  checkb "top-10 owns >= 90% of hot cycles" true
    (top_hot * 10 >= hot_bucket * 9);
  (* every top entry must resolve to a guest block start *)
  let image =
    Workloads.Spec_int.gzip.Workloads.Common.build ~scale:1 ~wide:false
  in
  List.iter
    (fun (entry, _) ->
      checkb
        (Printf.sprintf "entry 0x%x within guest code" entry)
        true
        (entry >= image.Ia32.Asm.entry - 0x100000
        && entry < image.Ia32.Asm.entry + 0x1000000))
    (P.top 10 p)

let test_engine_metrics_shape () =
  let tr = T.create () in
  let p = P.create () in
  let _, eng =
    run_gzip
      ~attach:(fun e ->
        E.attach_trace e tr;
        E.attach_profile e p)
      ()
  in
  let m = E.metrics eng in
  match J.parse (J.to_string m) with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok j ->
    List.iter
      (fun s ->
        match J.member s j with
        | Some (J.Obj _) -> ()
        | _ -> Alcotest.failf "missing section %s" s)
      [
        "cycles"; "counters"; "volume"; "machine"; "tcache"; "dcache"; "vos";
        "trace"; "profile";
      ];
    (match J.member "cycles" j with
    | Some c -> (
      match J.member "total" c with
      | Some (J.Int n) -> checkb "cycles.total > 0" true (n > 0)
      | _ -> Alcotest.fail "no cycles.total")
    | None -> assert false);
    check
      Alcotest.(list (pair string int))
      "metrics counters mirror Account.counters"
      (Ia32el.Account.counters eng.E.acct)
      (J.counters m)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "snapshot" `Quick test_metrics_snapshot;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring-wrap" `Quick test_ring_wrap;
          Alcotest.test_case "echo-hook" `Quick test_echo_hook;
          Alcotest.test_case "chrome-export" `Quick test_chrome_export;
        ] );
      ( "drift-guard",
        [
          Alcotest.test_case "all-fields-complete" `Quick
            test_all_fields_complete;
          Alcotest.test_case "counters-partition" `Quick
            test_counters_partition;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "tracing-is-free" `Quick test_tracing_is_free;
          Alcotest.test_case "profile-attribution" `Quick
            test_profile_attribution;
          Alcotest.test_case "engine-metrics-shape" `Quick
            test_engine_metrics_shape;
        ] );
    ]
