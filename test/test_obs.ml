(* Observability subsystem tests: the hand-rolled JSON layer, the trace
   ring buffer and its Chrome export, the Account drift guard that keeps
   [counters]/[all_fields] honest against the record's physical layout,
   and the end-to-end guarantees (tracing never perturbs a run; the
   profiler attributes hot cycles to named guest blocks). *)

module J = Obs.Metrics
module T = Obs.Trace
module P = Obs.Profile
module H = Obs.Hist
module S = Obs.Sample
module B = Workloads.Baselines
module E = Ia32el.Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ---------------- JSON ---------------- *)

let test_json_round_trip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("n", J.Int (-42));
        ("t", J.Bool true);
        ("z", J.Null);
        ("l", J.List [ J.Int 1; J.Str "x"; J.Obj [] ]);
        ("o", J.Obj [ ("inner", J.List []) ]);
      ]
  in
  (match J.parse (J.json_to_string v) with
  | Ok v' -> checkb "round trip" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  match J.parse (J.json_to_string ~pretty:false v) with
  | Ok v' -> checkb "compact round trip" true (v = v')
  | Error e -> Alcotest.failf "compact reparse failed: %s" e

let test_json_parse () =
  (match J.parse {| {"a": [1, 2.5, "A\n", false, null]} |} with
  | Ok (J.Obj [ ("a", J.List [ J.Int 1; J.Float f; J.Str s; J.Bool false; J.Null ]) ])
    ->
    checkb "float" true (abs_float (f -. 2.5) < 1e-9);
    check Alcotest.string "escape" "A\n" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match J.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match J.parse "[1, ]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted"

let test_metrics_snapshot () =
  let m = J.make ~schema:"test/1" in
  J.section m "counters" [ ("a", J.Int 3); ("b", J.Int 0); ("c", J.Str "x") ];
  J.section m "cycles" [ ("total", J.Int 7) ];
  check
    Alcotest.(list (pair string int))
    "counters" [ ("a", 3); ("b", 0) ] (J.counters m);
  match J.parse (J.to_string m) with
  | Ok j ->
    (match J.member "schema" j with
    | Some (J.Str "test/1") -> ()
    | _ -> Alcotest.fail "schema lost");
    (match J.member "cycles" j with
    | Some (J.Obj [ ("total", J.Int 7) ]) -> ()
    | _ -> Alcotest.fail "cycles section lost")
  | Error e -> Alcotest.failf "snapshot JSON invalid: %s" e

(* Property: any JSON value the writer can emit reparses to an equal
   value, pretty or compact. Floats are generated finite (the writer has
   no representation for nan/inf) from a dyadic grid so text round-trips
   are exact. *)
let json_gen =
  let open QCheck.Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun n -> J.Int n) (int_range (-1_000_000_000) 1_000_000_000);
        map (fun n -> J.Float (float_of_int n /. 16.0)) (int_range (-64000) 64000);
        map (fun s -> J.Str s) (string_size (int_range 0 12));
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map (fun l -> J.List l)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map (fun l -> J.Obj l)
                (list_size (int_range 0 4)
                   (pair key (self (depth - 1)))) );
          ])
    3

let test_json_round_trip_prop () =
  let arb = QCheck.make ~print:J.json_to_string json_gen in
  let prop j =
    match (J.parse (J.json_to_string j), J.parse (J.json_to_string ~pretty:false j)) with
    | Ok a, Ok b -> a = j && b = j
    | _ -> false
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"json writer/parser round-trip" arb prop)

let test_metrics_hist_round_trip () =
  (* a metrics snapshot carrying a histogram section survives the
     writer->parser loop with all Int leaves intact *)
  let h = H.create () in
  List.iter (H.record h) [ 0; 1; 15; 16; 17; 100; 5000; 123456; 3 ];
  let m = J.make ~schema:"test/hist" in
  J.section m "hist" (H.set_to_json (let s = H.create_set () in
                                     List.iter (H.record s.H.syscall_latency)
                                       [ 2; 9; 300 ];
                                     s));
  J.section m "one" [ ("h", H.to_json h) ];
  match J.parse (J.to_string m) with
  | Error e -> Alcotest.failf "hist metrics JSON invalid: %s" e
  | Ok j -> (
    match J.member "one" j with
    | Some one -> (
      match J.member "h" one with
      | Some hj ->
        (match J.member "count" hj with
        | Some (J.Int 9) -> ()
        | _ -> Alcotest.fail "hist count lost in round trip");
        (match J.member "max" hj with
        | Some (J.Int 123456) -> ()
        | _ -> Alcotest.fail "hist max lost in round trip")
      | None -> Alcotest.fail "hist leaf lost")
    | None -> Alcotest.fail "hist section lost")

(* ---------------- histograms ---------------- *)

let test_hist_buckets () =
  (* exactness below 16, bounded relative error above, monotone indices *)
  for v = 0 to 15 do
    checki (Printf.sprintf "exact bucket %d" v) v (H.bucket_index v);
    checki (Printf.sprintf "exact lo %d" v) v (H.bucket_lo v)
  done;
  let check_v v =
    let i = H.bucket_index v in
    let lo = H.bucket_lo i in
    checkb (Printf.sprintf "lo <= v for %d" v) true (lo <= v);
    (* relative error bound: the bucket's span is lo/16 for v >= 16 *)
    if v >= 16 then
      checkb
        (Printf.sprintf "relative error bounded for %d (lo=%d)" v lo)
        true
        (v - lo <= lo / 16 + 1)
  in
  List.iter check_v
    [ 16; 17; 31; 32; 33; 255; 256; 1000; 4095; 4096; 65535; 1_000_000;
      (1 lsl 40) + 12345 ];
  (* indices are monotone in the value *)
  let prev = ref (-1) in
  for e = 0 to 30 do
    let v = 1 lsl e in
    let i = H.bucket_index v in
    checkb (Printf.sprintf "monotone at %d" v) true (i > !prev);
    prev := i
  done

let test_hist_percentiles () =
  let h = H.create () in
  checki "empty p50" 0 (H.percentile h 0.5);
  for v = 1 to 100 do
    H.record h v
  done;
  checki "count" 100 (H.count h);
  checki "sum" 5050 (H.sum h);
  checki "min" 1 (H.min_value h);
  checki "max" 100 (H.max_value h);
  (* percentile reports the covering bucket's lower bound: within one
     bucket (6%) of the true rank value *)
  let p50 = H.percentile h 0.5 and p99 = H.percentile h 0.99 in
  checkb "p50 sane" true (p50 >= 44 && p50 <= 50);
  checkb "p99 sane" true (p99 >= 92 && p99 <= 99);
  checkb "p99 >= p50" true (p99 >= p50);
  (* negatives clamp, huge values land in the last bucket without error *)
  H.record h (-5);
  checki "negative clamps to 0" 0 (H.min_value h);
  H.record h max_int;
  checki "max_int recorded" max_int (H.max_value h);
  H.clear h;
  checki "clear resets" 0 (H.count h)

(* ---------------- sampler ---------------- *)

let test_sample_symbols () =
  let s =
    S.create ~interval:100
      ~labels:[ ("main", 0x1000); ("helper", 0x2000); ("tail", 0x3000) ]
  in
  S.record s ~now:100 ~tid:0 ~eip:0x1010 ~entry:0x1000 ~phase:"hot"
    ~degraded:false;
  S.record s ~now:300 ~tid:0 ~eip:0x2004 ~entry:0x2000 ~phase:"cold"
    ~degraded:true;
  (* now=300 crosses boundaries 200 and 300: weight 2 *)
  checki "samples" 3 (S.samples s);
  checki "entry share main" 1 (S.entry_samples s 0x1000);
  checki "entry share helper" 2 (S.entry_samples s 0x2000);
  let folded = S.folded s in
  checkb "main attributed" true
    (String.length folded > 0
    && String.sub folded 0 (String.length "t0;")
       = "t0;");
  checkb "degraded tagged" true
    (let re = "t0;helper;cold;degraded 2" in
     let rec contains i =
       i + String.length re <= String.length folded
       && (String.sub folded i (String.length re) = re || contains (i + 1))
     in
     contains 0);
  (* below the first label, or far past the last: page-bucketed *)
  S.record s ~now:400 ~tid:1 ~eip:0x500 ~entry:0x500 ~phase:"interp"
    ~degraded:false;
  S.record s ~now:500 ~tid:1 ~eip:(0x3000 + 0x20000) ~entry:0 ~phase:"runtime"
    ~degraded:false;
  checkb "page fallback" true
    (let f = S.folded s in
     let has sub =
       let rec go i =
         i + String.length sub <= String.length f
         && (String.sub f i (String.length sub) = sub || go (i + 1))
       in
       go 0
     in
     has "t1;0x0;interp" && has "t1;0x23000;runtime")

(* ---------------- trace ring ---------------- *)

let test_ring_wrap () =
  let tr = T.create ~capacity:8 () in
  let clock = ref 0 in
  T.set_clock tr (fun () ->
      incr clock;
      !clock);
  for i = 0 to 19 do
    T.emit tr (T.Dispatch { eip = i })
  done;
  checki "capacity" 8 (T.capacity tr);
  checki "length" 8 (T.length tr);
  checki "dropped" 12 (T.dropped tr);
  let evs = T.events tr in
  checki "retained" 8 (List.length evs);
  List.iteri
    (fun i (e : T.event) ->
      match e.T.ev with
      | T.Dispatch { eip } ->
        checki "oldest-first eip" (12 + i) eip;
        checki "clock stamp" (13 + i) e.T.at
      | _ -> Alcotest.fail "wrong event")
    evs

let test_echo_hook () =
  let tr = T.create ~capacity:4 () in
  let seen = ref 0 in
  T.set_echo tr (fun _ -> incr seen);
  T.emit tr (T.Heat_trigger { entry = 0x1000; registered = 1 });
  T.emit tr (T.Tcache_evict { bundles = 9 });
  checki "echo called per emit" 2 !seen

let test_chrome_export () =
  let tr = T.create ~capacity:16 () in
  let clock = ref 0 in
  T.set_clock tr (fun () ->
      clock := !clock + 100;
      !clock);
  T.emit tr (T.Dispatch { eip = 0x8048000 });
  T.emit tr
    (T.Trans_end { phase = T.Cold; entry = 0x8048000; insns = 5; cycles = 60 });
  T.emit tr (T.Syscall_enter { name = "write" });
  T.emit tr
    (T.Syscall_exit { name = "write"; kernel_cycles = 40; idle_cycles = 0 });
  let s = Buffer.contents (T.to_chrome tr) in
  match J.parse s with
  | Ok (J.List evs) ->
    let meta, events =
      List.partition (fun e -> J.member "ph" e = Some (J.Str "M")) evs
    in
    checki "event count" 4 (List.length events);
    (* leading metadata: process_name plus one thread_name per tid *)
    checki "metadata records" 2 (List.length meta);
    checkb "process_name present" true
      (List.exists (fun e -> J.member "name" e = Some (J.Str "process_name"))
         meta);
    checkb "thread_name present" true
      (List.exists (fun e -> J.member "name" e = Some (J.Str "thread_name"))
         meta);
    List.iter
      (fun e ->
        match J.member "args" e with
        | Some args -> (
          match J.member "name" args with
          | Some (J.Str _) -> ()
          | _ -> Alcotest.fail "metadata args.name missing")
        | None -> Alcotest.fail "metadata without args")
      meta;
    let spans =
      List.filter (fun e -> J.member "ph" e = Some (J.Str "X")) events
    in
    checki "span events" 2 (List.length spans);
    List.iter
      (fun e ->
        (match J.member "dur" e with
        | Some (J.Int d) -> checkb "positive dur" true (d > 0)
        | _ -> Alcotest.fail "span without dur");
        match (J.member "ts" e, J.member "name" e) with
        | Some (J.Int ts), Some (J.Str _) -> checkb "ts >= 0" true (ts >= 0)
        | _ -> Alcotest.fail "span missing ts/name")
      spans
  | Ok _ -> Alcotest.fail "chrome export is not an array"
  | Error e -> Alcotest.failf "chrome export invalid: %s" e

(* ---------------- Account drift guard ---------------- *)

(* [Account.t] is all-int, so its heap block has one word per field.
   Write a distinctive value into every word through [Obj] and require
   [all_fields] to read back exactly those values in order: any field
   added to the record without being added to [all_fields] (and so
   invisible to metrics and fuzzer coverage) trips the size check; any
   reordering or duplication trips the value check. *)
let test_all_fields_complete () =
  let a = Ia32el.Account.create () in
  let fields = Ia32el.Account.all_fields a in
  let r = Obj.repr a in
  checkb "flat int record" true (Obj.tag r = 0);
  checki "all_fields covers every record field" (Obj.size r)
    (List.length fields);
  for k = 0 to Obj.size r - 1 do
    Obj.set_field r k (Obj.repr ((1000 * k) + 7))
  done;
  List.iteri
    (fun k (name, v) ->
      checki (Printf.sprintf "field %s in declaration order" name)
        ((1000 * k) + 7)
        v)
    (Ia32el.Account.all_fields a)

let test_counters_partition () =
  let a = Ia32el.Account.create () in
  let all = List.map fst (Ia32el.Account.all_fields a) in
  let counters = List.map fst (Ia32el.Account.counters a) in
  let non_event = Ia32el.Account.non_event_fields in
  let sorted l = List.sort compare l in
  List.iter
    (fun n ->
      checkb (Printf.sprintf "counter %s is a real field" n) true
        (List.mem n all))
    counters;
  List.iter
    (fun n ->
      checkb (Printf.sprintf "non-event %s is a real field" n) true
        (List.mem n all);
      checkb (Printf.sprintf "non-event %s not double-counted" n) false
        (List.mem n counters))
    non_event;
  check
    Alcotest.(list string)
    "counters + non_event partition all fields" (sorted all)
    (sorted (counters @ non_event))

(* ---------------- end-to-end guarantees ---------------- *)

let run_gzip ?attach () =
  let r = B.run_el ?attach Workloads.Spec_int.gzip ~scale:1 in
  match r.B.engine with
  | Some e -> (r.B.cycles, e)
  | None -> Alcotest.fail "no engine"

let test_tracing_is_free () =
  let plain_cycles, plain_eng = run_gzip () in
  let tr = T.create () in
  let p = P.create () in
  let traced_cycles, traced_eng =
    run_gzip
      ~attach:(fun e ->
        E.attach_trace e tr;
        E.attach_profile e p)
      ()
  in
  checki "cycles identical with observability" plain_cycles traced_cycles;
  check
    Alcotest.(list (pair string int))
    "counters identical with observability"
    (Ia32el.Account.counters plain_eng.E.acct)
    (Ia32el.Account.counters traced_eng.E.acct);
  checkb "trace saw events" true (T.length tr > 0)

let test_profile_attribution () =
  let p = P.create () in
  let _, eng = run_gzip ~attach:(fun e -> E.attach_profile e p) () in
  let m = eng.E.machine in
  let hot_bucket = m.Ipf.Machine.buckets.(Ia32el.Account.bucket_hot) in
  let cold_bucket = m.Ipf.Machine.buckets.(Ia32el.Account.bucket_cold) in
  checkb "gzip runs hot code" true (hot_bucket > 0);
  (* the probe mirrors bucket_fn exactly, so totals must match 1:1 *)
  checki "hot attribution exact" hot_bucket (P.hot_exec p);
  checki "cold attribution exact" cold_bucket (P.cold_exec p);
  (* acceptance criterion: top 10 blocks own >= 90% of hot-phase cycles *)
  let top_hot =
    List.fold_left
      (fun acc (_, (row : P.row)) -> acc + row.P.hot_cycles)
      0 (P.top 10 p)
  in
  checkb "top-10 owns >= 90% of hot cycles" true
    (top_hot * 10 >= hot_bucket * 9);
  (* every top entry must resolve to a guest block start *)
  let image =
    Workloads.Spec_int.gzip.Workloads.Common.build ~scale:1 ~wide:false
  in
  List.iter
    (fun (entry, _) ->
      checkb
        (Printf.sprintf "entry 0x%x within guest code" entry)
        true
        (entry >= image.Ia32.Asm.entry - 0x100000
        && entry < image.Ia32.Asm.entry + 0x1000000))
    (P.top 10 p)

let test_engine_metrics_shape () =
  let tr = T.create () in
  let p = P.create () in
  let _, eng =
    run_gzip
      ~attach:(fun e ->
        E.attach_trace e tr;
        E.attach_profile e p)
      ()
  in
  let m = E.metrics eng in
  match J.parse (J.to_string m) with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok j ->
    List.iter
      (fun s ->
        match J.member s j with
        | Some (J.Obj _) -> ()
        | _ -> Alcotest.failf "missing section %s" s)
      [
        "cycles"; "counters"; "volume"; "machine"; "tcache"; "dcache"; "vos";
        "trace"; "profile";
      ];
    (match J.member "cycles" j with
    | Some c -> (
      match J.member "total" c with
      | Some (J.Int n) -> checkb "cycles.total > 0" true (n > 0)
      | _ -> Alcotest.fail "no cycles.total")
    | None -> assert false);
    check
      Alcotest.(list (pair string int))
      "metrics counters mirror Account.counters"
      (Ia32el.Account.counters eng.E.acct)
      (J.counters m)

(* Acceptance criterion: attaching the sampler (and the histogram set)
   must leave every deterministic observable bit-identical — cycles and
   all Account counters — across the predecode x decode-cache config
   matrix. And because sampling is driven by the virtual clock, two
   sampled runs of the same config produce byte-identical folded
   flamegraph output. *)
let test_sampler_is_free () =
  let gzip = Workloads.Spec_int.gzip in
  let image = gzip.Workloads.Common.build ~scale:1 ~wide:false in
  let labels = image.Ia32.Asm.labels in
  let sampled_run config =
    let s = S.create ~interval:4096 ~labels in
    let r =
      B.run_el ~config
        ~attach:(fun e ->
          E.attach_sample e s;
          E.attach_hists e (H.create_set ()))
        gzip ~scale:1
    in
    let eng = match r.B.engine with Some e -> e | None -> assert false in
    (r.B.cycles, Ia32el.Account.counters eng.E.acct, s)
  in
  List.iter
    (fun (pre, dc) ->
      let config =
        { Ia32el.Config.default with
          enable_predecode = pre;
          enable_decode_cache = dc }
      in
      let tag = Printf.sprintf "predecode=%b decode_cache=%b" pre dc in
      let plain = B.run_el ~config gzip ~scale:1 in
      let plain_eng =
        match plain.B.engine with Some e -> e | None -> assert false
      in
      let cycles, counters, s = sampled_run config in
      checki (tag ^ ": cycles bit-identical") plain.B.cycles cycles;
      check
        Alcotest.(list (pair string int))
        (tag ^ ": counters bit-identical")
        (Ia32el.Account.counters plain_eng.E.acct)
        counters;
      checkb (tag ^ ": sampler saw samples") true (S.samples s > 0))
    [ (true, true); (true, false); (false, true); (false, false) ];
  (* determinism of the artifact itself: two sampled runs, same bytes *)
  let _, _, s1 = sampled_run Ia32el.Config.default in
  let _, _, s2 = sampled_run Ia32el.Config.default in
  check Alcotest.string "folded output byte-identical across runs"
    (S.folded s1) (S.folded s2)

let test_metrics_v2_sections () =
  (* with sampler + hists + timers attached, the /2 snapshot carries the
     new sections; detached it must not (CI byte-compares cold/warm
     metrics files produced without the new flags) *)
  let gzip = Workloads.Spec_int.gzip in
  let image = gzip.Workloads.Common.build ~scale:1 ~wide:false in
  let s = S.create ~interval:4096 ~labels:image.Ia32.Asm.labels in
  let _, eng =
    run_gzip
      ~attach:(fun e ->
        E.attach_sample e s;
        E.attach_hists e (H.create_set ());
        E.attach_timers e (Obs.Timers.create ()))
      ()
  in
  (match J.parse (J.to_string (E.metrics eng)) with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok j ->
    (match J.member "schema" j with
    | Some (J.Str "ia32el-metrics/2") -> ()
    | _ -> Alcotest.fail "schema is not ia32el-metrics/2");
    List.iter
      (fun sec ->
        match J.member sec j with
        | Some (J.Obj _) -> ()
        | _ -> Alcotest.failf "attached run missing section %s" sec)
      [ "hist"; "sample"; "host_timers" ]);
  let _, plain_eng = run_gzip () in
  match J.parse (J.to_string (E.metrics plain_eng)) with
  | Error e -> Alcotest.failf "metrics JSON invalid: %s" e
  | Ok j ->
    List.iter
      (fun sec ->
        if J.member sec j <> None then
          Alcotest.failf "detached run leaks section %s" sec)
      [ "hist"; "sample"; "host_timers" ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "round-trip-property" `Quick
            test_json_round_trip_prop;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "snapshot" `Quick test_metrics_snapshot;
          Alcotest.test_case "hist-round-trip" `Quick
            test_metrics_hist_round_trip;
        ] );
      ( "hist",
        [
          Alcotest.test_case "buckets" `Quick test_hist_buckets;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
        ] );
      ( "sample",
        [ Alcotest.test_case "symbols-folded" `Quick test_sample_symbols ] );
      ( "trace",
        [
          Alcotest.test_case "ring-wrap" `Quick test_ring_wrap;
          Alcotest.test_case "echo-hook" `Quick test_echo_hook;
          Alcotest.test_case "chrome-export" `Quick test_chrome_export;
        ] );
      ( "drift-guard",
        [
          Alcotest.test_case "all-fields-complete" `Quick
            test_all_fields_complete;
          Alcotest.test_case "counters-partition" `Quick
            test_counters_partition;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "tracing-is-free" `Quick test_tracing_is_free;
          Alcotest.test_case "profile-attribution" `Quick
            test_profile_attribution;
          Alcotest.test_case "engine-metrics-shape" `Quick
            test_engine_metrics_shape;
          Alcotest.test_case "sampler-is-free" `Quick test_sampler_is_free;
          Alcotest.test_case "metrics-v2-sections" `Quick
            test_metrics_v2_sections;
        ] );
    ]
