(* Tests for the differential fuzzer itself: the shrinker must reduce a
   seeded engine bug to a tiny reproducer, truncated instructions at a page
   boundary must fault precisely in both vehicles, and a small campaign
   over the healthy translator must come back clean. *)

module F = Harness.Fuzz
module E = Ia32el.Engine
module M = Ipf.Machine
module L = Ia32el.Lockstep

(* ---------------------------------------------------------------- *)
(* Shrinker regression: seed a deterministic engine bug              *)
(* ---------------------------------------------------------------- *)

(* The seeded bug: every engine dispatch forces CF to 1, so any program
   diverges at its first commit point. Chains any previously attached
   dispatch hook, as run_one requires. *)
let seeded_bug (e : E.t) =
  let prev = e.E.on_dispatch in
  e.E.on_dispatch <-
    Some
      (fun eip ->
        (match prev with Some f -> f eip | None -> ());
        M.set e.E.machine (Ia32el.Regs.gr_of_flag Ia32.Insn.CF) 1L)

let shrinker_tests =
  [
    Alcotest.test_case "seeded bug found and shrunk small" `Quick (fun () ->
        let r =
          F.campaign
            {
              F.default_campaign with
              F.seed = 11;
              runs = 5;
              max_insns = 24;
              inject_seeds = [];
              max_findings = 1;
              attach_extra = Some seeded_bug;
              corpus_dir = None;
            }
        in
        (match r.F.findings with
        | [ f ] ->
          (match f.F.classification with
          | F.Diverged -> ()
          | _ -> Alcotest.fail "expected a divergence finding");
          let n = F.insn_count f.F.prog in
          if n > 8 then
            Alcotest.failf "shrunk reproducer still has %d instructions" n
        | fs -> Alcotest.failf "expected exactly one finding, got %d"
                  (List.length fs)));
    Alcotest.test_case "shrinking is deterministic" `Quick (fun () ->
        let run () =
          let r =
            F.campaign
              {
                F.default_campaign with
                F.seed = 11;
                runs = 2;
                inject_seeds = [];
                max_findings = 1;
                attach_extra = Some seeded_bug;
                corpus_dir = None;
              }
          in
          List.map
            (fun f -> Fmt.str "%a" F.pp_prog_asm f.F.prog)
            r.F.findings
        in
        Alcotest.(check (list string)) "same shrunk programs" (run ()) (run ()));
  ]

(* ---------------------------------------------------------------- *)
(* Decoder boundary: truncated instruction at the end of a page      *)
(* ---------------------------------------------------------------- *)

(* Assemble a program whose last bytes are a truncated instruction ending
   exactly at a page boundary with the next page unmapped. Both vehicles
   must agree on the outcome (normally a precise fetch fault) and never
   diverge or throw. *)
let truncated_at_page_end insn =
  let page = 0x1000 in
  let bytes = Ia32.Encode.encode ~ip:0 insn in
  let len = String.length bytes in
  if len < 2 then None
  else begin
    let keep = len - 1 in
    let truncated = String.sub bytes 0 keep in
    (* jmp rel32 is 5 bytes; land the truncated bytes at page end *)
    let code =
      Ia32.Asm.
        [
          label "start";
          jmp "tail";
          space (page - 5 - keep);
          label "tail";
          raw truncated;
        ]
    in
    let image = Ia32.Asm.build ~code ~data:Ia32.Asm.[ space 16 ] () in
    let mem = Ia32.Memory.create () in
    let st0 = Ia32.Asm.load image mem in
    let report =
      L.run ~fuel:100_000 ~btlib:(module Btlib.Linuxsim) mem st0
    in
    Some report
  end

let boundary_tests =
  [
    Alcotest.test_case "truncated insns at page end fault precisely" `Quick
      (fun () ->
        let rng = F.Rng.create 2024 in
        let tried = ref 0 in
        while !tried < 50 do
          let insn = F.gen_insn rng in
          match truncated_at_page_end insn with
          | None -> () (* 1-byte encoding: nothing to truncate *)
          | Some report ->
            incr tried;
            (match report.L.divergence with
            | Some d ->
              Alcotest.failf "diverged on truncated [%s]: %a"
                (Ia32.Insn.to_string insn) L.pp_divergence d
            | None -> ());
            (match report.L.outcome with
            | Some (E.Unhandled_fault _) | Some (E.Exited _) -> ()
            | Some E.Out_of_fuel | None ->
              Alcotest.failf "livelock on truncated [%s]"
                (Ia32.Insn.to_string insn))
        done);
  ]

(* ---------------------------------------------------------------- *)
(* Campaign smoke: the healthy translator survives a small campaign  *)
(* ---------------------------------------------------------------- *)

let campaign_tests =
  [
    Alcotest.test_case "small campaign is clean" `Slow (fun () ->
        let r =
          F.campaign
            {
              F.default_campaign with
              F.seed = 5;
              runs = 40;
              max_insns = 24;
              inject_seeds = [ 1 ];
              corpus_dir = None;
            }
        in
        Alcotest.(check int) "programs" 40 r.F.programs;
        if r.F.executions < 80 then
          Alcotest.failf "expected >= 80 executions, got %d" r.F.executions;
        if List.length r.F.pools_hit < 5 then
          Alcotest.failf "expected >= 5 pools, got %d"
            (List.length r.F.pools_hit);
        (match r.F.findings with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "campaign found a bug:@.%a" F.pp_finding f);
        if List.length r.F.coverage < 20 then
          Alcotest.failf "expected >= 20 coverage buckets, got %d"
            (List.length r.F.coverage));
    Alcotest.test_case "seed spec parsing" `Quick (fun () ->
        let ok s = match F.parse_seed_spec s with
          | Ok l -> l
          | Error e -> Alcotest.failf "unexpected parse error on %S: %s" s e
        in
        Alcotest.(check (list int)) "single" [ 3 ] (ok "3");
        Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (ok "0-2");
        Alcotest.(check (list int)) "mixed" [ 1; 4; 5; 6 ] (ok "1,4-6");
        (match F.parse_seed_spec "x" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error on \"x\""));
  ]

let () =
  Alcotest.run "fuzz"
    [
      ("shrinker", shrinker_tests);
      ("decoder-boundary", boundary_tests);
      ("campaign", campaign_tests);
    ]
